package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"testing"

	"trustgrid/internal/api"
	"trustgrid/internal/client"
	"trustgrid/internal/experiments"
	"trustgrid/internal/fuzzy"
	"trustgrid/internal/grid"
	"trustgrid/internal/sched"
	"trustgrid/internal/server"
)

// walTestConfig is the durable-daemon configuration the recovery tests
// share: manual clock, fair-share admission, full dynamics (churn +
// reputation feedback + deceptive ground truth) and a snapshot cadence
// small enough that a short run crosses several snapshots. WALKeep -1
// retains every record, which is what lets the crash-point sweep cut
// the log at arbitrary prefixes.
func walTestConfig(walDir, algo string) server.Config {
	setup := experiments.TestSetup()
	setup.Population = 12
	setup.Generations = 6
	rep := fuzzy.DefaultReputationConfig()
	return server.Config{
		Sites: []*grid.Site{
			{ID: 0, Speed: 10, Nodes: 8, SecurityLevel: 0.95},
			{ID: 1, Speed: 20, Nodes: 16, SecurityLevel: 0.5},
			{ID: 2, Speed: 5, Nodes: 4, SecurityLevel: 0.8},
		},
		Algo:          algo,
		Seed:          11,
		BatchInterval: 300,
		Manual:        true,
		Setup:         setup,
		RoundBudget:   3,
		Dynamics: &sched.DynamicsConfig{
			Churn: []grid.ChurnEvent{
				{Time: 700, Site: 1, Kind: grid.ChurnCrash},
				{Time: 1000, Site: 2, Kind: grid.ChurnDegrade, Factor: 0.5},
				{Time: 1600, Site: 1, Kind: grid.ChurnJoin},
			},
			Reputation: &rep,
			TrueLevels: []float64{0.7, 0.5, 0.8},
		},
		WALDir:        walDir,
		SnapshotEvery: 8,
		WALKeep:       -1,
	}
}

// walJob is one scripted submission of the deterministic drive
// protocol.
type walJob struct {
	id       int
	submitAt float64 // the driver submits it at the first tick past this
	arrival  float64 // declared arrival; sometimes in the past (clamped)
	workload float64
	sd       float64
	tenant   string
}

func walJobList(n int) []walJob {
	out := make([]walJob, n)
	for i := range out {
		j := walJob{
			id:       i + 1,
			submitAt: float64(i) * 85,
			workload: 200 + float64((i*137)%7)*400,
			sd:       0.6 + 0.05*float64(i%7),
			tenant:   "acme",
		}
		j.arrival = j.submitAt + float64((i*53)%200)
		if i%5 == 4 {
			// A declared arrival the clock has already passed: the ingest
			// clamp is part of what recovery must reproduce.
			j.arrival = j.submitAt - 250
			if j.arrival < 0 {
				j.arrival = 0
			}
		}
		if i%3 == 0 {
			j.tenant = "umbrella"
		}
		out[i] = j
	}
	return out
}

// driveWAL replays the scripted protocol against a daemon, idempotently:
// tenants that already exist (recovered from the WAL) 409 and are
// skipped, jobs already recovered bounce off the duplicate-ID check,
// and advances the recovered clock has passed are not re-issued. Run
// against a fresh daemon it produces the baseline; run against a
// recovered one it completes whatever the crash cut short.
func driveWAL(t *testing.T, c *client.Client, jobs []walJob) {
	t.Helper()
	ctx := context.Background()
	for _, spec := range []api.TenantSpec{
		{ID: "acme", Weight: 2, MaxQueue: 64},
		{ID: "umbrella", Weight: 1},
	} {
		if _, err := c.CreateTenant(ctx, spec); err != nil && !errors.Is(err, client.ErrConflict) {
			t.Fatalf("create tenant %s: %v", spec.ID, err)
		}
	}
	m, err := c.Metrics(ctx, "")
	if err != nil {
		t.Fatal(err)
	}
	now := m.VirtualNow
	next := 0
	for tick := 300.0; tick <= 2400; tick += 300 {
		for next < len(jobs) && jobs[next].submitAt < tick {
			j := jobs[next]
			id, arr := j.id, j.arrival
			_, err := c.Submit(ctx, j.tenant, []api.JobSpec{
				{ID: &id, Arrival: &arr, Workload: j.workload, SD: j.sd},
			})
			if err != nil && !(errors.Is(err, client.ErrBadRequest) &&
				strings.Contains(err.Error(), "duplicate job id")) {
				t.Fatalf("submit job %d: %v", j.id, err)
			}
			next++
		}
		if tick > now {
			if _, err := c.Advance(ctx, api.AdvanceRequest{To: tick}); err != nil {
				t.Fatalf("advance to %v: %v", tick, err)
			}
		}
	}
	if _, err := c.Drain(ctx); err != nil {
		t.Fatal(err)
	}
}

// fetchEvents returns the daemon's entire event stream as raw NDJSON —
// the byte-identical artifact the parity assertions compare.
func fetchEvents(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/v2/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: %d: %s", resp.StatusCode, body)
	}
	return string(body)
}

// harvestWAL reads a closed WAL directory back as individual record
// lines (frames are lines, so prefixes of the line list are exactly the
// "crashed after record k" disk states) plus every snapshot by covered
// sequence number.
func harvestWAL(t *testing.T, dir string) (lines [][]byte, snaps map[uint64][]byte) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var segs []string
	snaps = make(map[uint64][]byte)
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log"):
			segs = append(segs, name)
		case strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".json"):
			seq, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "snap-"), ".json"), 10, 64)
			if err != nil {
				t.Fatalf("unparseable snapshot name %q", name)
			}
			payload, err := os.ReadFile(filepath.Join(dir, name))
			if err != nil {
				t.Fatal(err)
			}
			snaps[seq] = payload
		}
	}
	sort.Strings(segs) // zero-padded names: lexical = sequence order
	for _, name := range segs {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		for len(data) > 0 {
			nl := bytes.IndexByte(data, '\n')
			if nl < 0 {
				t.Fatalf("segment %s ends mid-line after a clean close", name)
			}
			lines = append(lines, data[:nl+1])
			data = data[nl+1:]
		}
	}
	return lines, snaps
}

// crashDir materializes the disk state of a crash right after record k
// became durable: the first k record lines (plus an optional torn tail
// of garbage bytes) and every snapshot that had been written by then (a
// snapshot covering sequence s exists only once record s does).
func crashDir(t *testing.T, lines [][]byte, snaps map[uint64][]byte, k int, torn []byte) string {
	t.Helper()
	dir := t.TempDir()
	var buf bytes.Buffer
	for _, l := range lines[:k] {
		buf.Write(l)
	}
	buf.Write(torn)
	if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("wal-%016d.log", 1)), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	for seq, payload := range snaps {
		if seq <= uint64(k) {
			if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("snap-%016d.json", seq)), payload, 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	return dir
}

// tenantFacts extracts the deterministic slice of the per-tenant
// metrics (latency percentiles are wall-clock and excluded).
func tenantFacts(rep *api.MetricsReport) string {
	ids := make([]string, 0, len(rep.Tenants))
	for id := range rep.Tenants {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var b strings.Builder
	for _, id := range ids {
		tm := rep.Tenants[id]
		fmt.Fprintf(&b, "%s w=%v q=%d sub=%d placed=%d failed=%d done=%d rej=%d\n",
			id, tm.Weight, tm.Queued, tm.Submitted, tm.Placed, tm.Failed, tm.Completed, tm.Rejected)
	}
	return b.String()
}

// TestCrashPointParity is the recovery contract, end to end: record a
// full daemon run's WAL, then for EVERY prefix k simulate a kill -9
// right after record k became durable, recover a fresh daemon from that
// disk state, re-drive the same scripted protocol, and require the
// complete event stream — every placement, failure draw, churn effect
// and reputation update, with times — to be byte-identical to the
// uninterrupted run's. Runs for a stateless heuristic and for the
// stateful STGA (whose history table and GA rng ride in the snapshot).
func TestCrashPointParity(t *testing.T) {
	for _, algo := range []string{"minmin", "stga"} {
		t.Run(algo, func(t *testing.T) {
			jobs := walJobList(20)

			// Uninterrupted baseline.
			baseDir := t.TempDir()
			srv, err := server.New(walTestConfig(baseDir, algo))
			if err != nil {
				t.Fatal(err)
			}
			ts := httptest.NewServer(srv.Handler())
			c := client.New(ts.URL)
			driveWAL(t, c, jobs)
			wantEvents := fetchEvents(t, ts.URL)
			rep, err := c.Metrics(context.Background(), "")
			if err != nil {
				t.Fatal(err)
			}
			wantTenants := tenantFacts(rep)
			wantCompleted := rep.Completed
			ts.Close()
			if _, err := srv.Stop(false); err != nil {
				t.Fatal(err)
			}

			lines, snaps := harvestWAL(t, baseDir)
			if len(lines) != 5+len(jobs) { // 3 churn + 2 tenants + arrivals
				t.Fatalf("recorded %d WAL records, want %d", len(lines), 5+len(jobs))
			}
			if wantCompleted != int64(len(jobs)) {
				t.Fatalf("baseline completed %d of %d jobs", wantCompleted, len(jobs))
			}
			if len(snaps) < 3 {
				t.Fatalf("baseline wrote %d snapshots, want >= 3 (cadence too lazy for the sweep)", len(snaps))
			}

			// Torn garbage is appended at a few cut points: a crash that
			// tears the record in flight must recover exactly like a crash
			// right after the last durable record.
			torn := map[int][]byte{
				2:  []byte("deadbeef {\"seq\":3,\"kind\":\"arr"),
				9:  []byte("\x00\xff garbage"),
				17: []byte("0"),
			}
			for k := 0; k <= len(lines); k++ {
				dir := crashDir(t, lines, snaps, k, torn[k])
				srv, err := server.New(walTestConfig(dir, algo))
				if err != nil {
					t.Fatalf("k=%d: recovery failed: %v", k, err)
				}
				ts := httptest.NewServer(srv.Handler())
				driveWAL(t, client.New(ts.URL), jobs)
				got := fetchEvents(t, ts.URL)
				rep, err := client.New(ts.URL).Metrics(context.Background(), "")
				if err != nil {
					t.Fatalf("k=%d: %v", k, err)
				}
				ts.Close()
				if _, err := srv.Stop(false); err != nil {
					t.Fatalf("k=%d: stop: %v", k, err)
				}
				if got != wantEvents {
					d := firstDiff(wantEvents, got)
					t.Fatalf("k=%d: recovered event stream diverges from uninterrupted run at byte %d\nwant: %s\ngot:  %s",
						k, d, excerpt(wantEvents, d), excerpt(got, d))
				}
				if tf := tenantFacts(rep); tf != wantTenants {
					t.Fatalf("k=%d: tenant counters diverge:\nwant:\n%sgot:\n%s", k, wantTenants, tf)
				}
			}
		})
	}
}

// excerpt returns the whole line of s containing byte offset d.
func excerpt(s string, d int) string {
	if d > len(s) {
		d = len(s)
	}
	lo := strings.LastIndexByte(s[:d], '\n') + 1
	hi := strings.IndexByte(s[d:], '\n')
	if hi < 0 {
		hi = len(s)
	} else {
		hi += d
	}
	return s[lo:hi]
}

func firstDiff(a, b string) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// TestTenantLifecycleSurvivesRestart covers the /v2 surface across a
// restart: a runtime-registered tenant's spec, its queue-quota
// occupancy (and therefore the 429 + Retry-After admission behavior)
// and its counters must all come back, and quota must free normally
// once the recovered jobs place.
func TestTenantLifecycleSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := walTestConfig(dir, "minmin")
	ctx := context.Background()

	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	c := client.New(ts.URL)
	if _, err := c.CreateTenant(ctx, api.TenantSpec{ID: "acme", Weight: 3, MaxQueue: 2}); err != nil {
		t.Fatal(err)
	}
	submit := func(c *client.Client, id int, arrival float64) error {
		_, err := c.Submit(ctx, "acme", []api.JobSpec{
			{ID: &id, Arrival: &arrival, Workload: 500, SD: 0.7},
		})
		return err
	}
	if err := submit(c, 1, 5000); err != nil {
		t.Fatal(err)
	}
	if err := submit(c, 2, 5000); err != nil {
		t.Fatal(err)
	}
	err = submit(c, 3, 5000)
	if !errors.Is(err, client.ErrOverQuota) {
		t.Fatalf("third job over MaxQueue=2: got %v, want 429", err)
	}
	if client.RetryAfter(err) <= 0 {
		t.Fatal("429 without a Retry-After hint")
	}
	ts.Close()
	if _, err := srv.Stop(false); err != nil {
		t.Fatal(err)
	}

	srv2, err := server.New(cfg)
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer srv2.Stop(false)
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	c2 := client.New(ts2.URL)

	tenants, err := c2.Tenants(ctx)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, spec := range tenants {
		if spec.ID == "acme" {
			found = true
			if spec.Weight != 3 || spec.MaxQueue != 2 {
				t.Fatalf("recovered spec %+v, want weight 3 maxqueue 2", spec)
			}
		}
	}
	if !found {
		t.Fatal("runtime-registered tenant lost in recovery")
	}

	// Quota occupancy survived: the two recovered jobs still hold their
	// slots, so admission control picks up exactly where it left off.
	err = submit(c2, 3, 5000)
	if !errors.Is(err, client.ErrOverQuota) {
		t.Fatalf("post-recovery submit against full queue: got %v, want 429", err)
	}
	if client.RetryAfter(err) <= 0 {
		t.Fatal("post-recovery 429 without a Retry-After hint")
	}
	rep, err := c2.Metrics(ctx, "acme")
	if err != nil {
		t.Fatal(err)
	}
	tm := rep.Tenants["acme"]
	if tm.Queued != 2 || tm.Submitted != 2 || tm.Rejected != 2 {
		t.Fatalf("recovered counters queued=%d submitted=%d rejected=%d, want 2/2/2", tm.Queued, tm.Submitted, tm.Rejected)
	}

	// Placement frees the quota and the gate opens again.
	if _, err := c2.Advance(ctx, api.AdvanceRequest{To: 6000}); err != nil {
		t.Fatal(err)
	}
	if err := submit(c2, 3, 6000); err != nil {
		t.Fatalf("submit after quota freed: %v", err)
	}
}

// TestEventCursorSurvivesRestart: a streaming client's cursor must stay
// valid across a restart — sequence numbers continue exactly where the
// recovered log ends, with no gap and no replayed duplicates before the
// cursor.
func TestEventCursorSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := walTestConfig(dir, "minmin")
	ctx := context.Background()

	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	c := client.New(ts.URL)
	for i := 1; i <= 5; i++ {
		id, arr := i, float64(i)*100
		if _, err := c.Submit(ctx, "", []api.JobSpec{{ID: &id, Arrival: &arr, Workload: 400, SD: 0.65}}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Advance(ctx, api.AdvanceRequest{To: 900}); err != nil {
		t.Fatal(err)
	}
	before := fetchEvents(t, ts.URL)
	nBefore := strings.Count(before, "\n")
	if nBefore == 0 {
		t.Fatal("no events before restart")
	}
	ts.Close()
	if _, err := srv.Stop(false); err != nil {
		t.Fatal(err)
	}

	srv2, err := server.New(cfg)
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer srv2.Stop(false)
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()

	// The recovered log replays the same history...
	if after := fetchEvents(t, ts2.URL); after != before {
		t.Fatal("recovered event history differs from pre-restart history")
	}
	// ...and a client's old cursor sees nothing until new work happens.
	resp, err := http.Get(fmt.Sprintf("%s/v2/events?since=%d", ts2.URL, nBefore))
	if err != nil {
		t.Fatal(err)
	}
	page, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if len(page) != 0 {
		t.Fatalf("cursor %d returned stale events after recovery: %s", nBefore, page)
	}
	if _, err := client.New(ts2.URL).Drain(ctx); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(fmt.Sprintf("%s/v2/events?since=%d", ts2.URL, nBefore))
	if err != nil {
		t.Fatal(err)
	}
	page, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if len(page) == 0 {
		t.Fatal("no events after post-recovery drain")
	}
	var first struct {
		Seq int64 `json:"seq"`
	}
	nl := bytes.IndexByte(page, '\n')
	if nl < 0 {
		nl = len(page)
	}
	if err := json.Unmarshal(page[:nl], &first); err != nil {
		t.Fatalf("unparseable event line %q: %v", page[:nl], err)
	}
	if first.Seq != int64(nBefore) {
		t.Fatalf("first post-recovery event has seq %d, cursor was %d (gap or overlap)", first.Seq, nBefore)
	}
}

// TestRecoveryRejectsConfigChange: a WAL is only meaningful under the
// configuration that produced it. A changed seed trips the snapshot
// fingerprint; a changed churn trace trips the recorded-input check.
func TestRecoveryRejectsConfigChange(t *testing.T) {
	dir := t.TempDir()
	cfg := walTestConfig(dir, "minmin")
	ctx := context.Background()

	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	c := client.New(ts.URL)
	id, arr := 1, 100.0
	if _, err := c.Submit(ctx, "", []api.JobSpec{{ID: &id, Arrival: &arr, Workload: 400, SD: 0.65}}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Advance(ctx, api.AdvanceRequest{To: 600}); err != nil {
		t.Fatal(err)
	}
	ts.Close()
	if _, err := srv.Stop(false); err != nil {
		t.Fatal(err)
	}

	// Every fingerprint field trips the same refusal.
	mutations := map[string]func(*server.Config){
		"seed":           func(c *server.Config) { c.Seed = 99 },
		"algo":           func(c *server.Config) { c.Algo = "stga" },
		"mode":           func(c *server.Config) { c.Mode = "risky" },
		"batch-interval": func(c *server.Config) { c.BatchInterval = 450 },
		"round-budget":   func(c *server.Config) { c.RoundBudget = 7 },
		"sites":          func(c *server.Config) { c.Sites = c.Sites[:2] },
		"manual":         func(c *server.Config) { c.Manual = false },
		"shards":         func(c *server.Config) { c.Shards = 2 },
		"rng-version":    func(c *server.Config) { c.Setup.RNGVersion = 2 },
	}
	for field, mutate := range mutations {
		bad := walTestConfig(dir, "minmin")
		mutate(&bad)
		if _, err := server.New(bad); err == nil || !strings.Contains(err.Error(), "refusing to restore") {
			t.Fatalf("%s change not rejected: %v", field, err)
		}
	}

	bad2 := walTestConfig(dir, "minmin")
	bad2.Dynamics.Churn[0].Time = 650
	if _, err := server.New(bad2); err == nil || !strings.Contains(err.Error(), "churn record") {
		t.Fatalf("churn change not rejected: %v", err)
	}

	good, err := server.New(walTestConfig(dir, "minmin"))
	if err != nil {
		t.Fatalf("unchanged config failed to recover: %v", err)
	}
	_, _ = good.Stop(false)

	// 0 and 1 are the same draw contract: a pre-knob snapshot (written
	// with RNGVersion 0) must restore under an explicit v1 config.
	v1 := walTestConfig(dir, "minmin")
	v1.Setup.RNGVersion = 1
	alias, err := server.New(v1)
	if err != nil {
		t.Fatalf("explicit rng version 1 refused a version-0 snapshot: %v", err)
	}
	_, _ = alias.Stop(false)
}
