package server_test

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"trustgrid/internal/api"
	"trustgrid/internal/client"
	"trustgrid/internal/experiments"
	"trustgrid/internal/server"
)

func newManualV2Server(t *testing.T, cfg server.Config) (*server.Server, *httptest.Server, *client.Client) {
	t.Helper()
	setup := experiments.TestSetup()
	w, err := setup.PSAWorkload(1, 10)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Sites = w.Sites
	if cfg.Algo == "" {
		cfg.Algo = "minmin"
	}
	cfg.Seed = 1
	cfg.Setup = setup
	if cfg.BatchInterval == 0 {
		cfg.BatchInterval = 1000
	}
	cfg.Manual = true
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { _, _ = srv.Stop(false) })
	return srv, ts, client.New(ts.URL)
}

// TestSubmitValidatesBeforeClaimingIDs is the regression test for the
// manual-mode ID leak: a request carrying a valid explicit ID followed
// by an invalid job used to burn the ID before validation failed, so a
// corrected retry of the same trace chunk hit a duplicate-ID rejection.
// Validation must complete for the whole request before any ID is
// claimed.
func TestSubmitValidatesBeforeClaimingIDs(t *testing.T) {
	_, _, c := newManualV2Server(t, server.Config{})
	ctx := context.Background()
	id, arr := 7, 0.0

	// Valid job with explicit ID 7 + invalid job (negative workload):
	// whole request rejected, nothing claimed.
	_, err := c.Submit(ctx, "", []api.JobSpec{
		{ID: &id, Arrival: &arr, Workload: 100, SD: 0.7},
		{Arrival: &arr, Workload: -1, SD: 0.7},
	})
	if !errors.Is(err, client.ErrBadRequest) {
		t.Fatalf("want ErrBadRequest, got %v", err)
	}

	// The corrected retry reuses ID 7 and must succeed.
	ids, err := c.Submit(ctx, "", []api.JobSpec{
		{ID: &id, Arrival: &arr, Workload: 100, SD: 0.7},
		{Arrival: &arr, Workload: 200, SD: 0.7},
	})
	if err != nil {
		t.Fatalf("retry after invalid batch: %v", err)
	}
	if len(ids) != 2 || ids[0] != 7 {
		t.Fatalf("retry ids: %v", ids)
	}

	// Duplicates within one request are also detected before claiming.
	_, err = c.Submit(ctx, "", []api.JobSpec{
		{ID: intp(9), Arrival: &arr, Workload: 100, SD: 0.7},
		{ID: intp(9), Arrival: &arr, Workload: 100, SD: 0.7},
	})
	if !errors.Is(err, client.ErrBadRequest) {
		t.Fatalf("want ErrBadRequest for in-request duplicate, got %v", err)
	}
	if ids, err = c.Submit(ctx, "", []api.JobSpec{
		{ID: intp(9), Arrival: &arr, Workload: 100, SD: 0.7},
	}); err != nil || ids[0] != 9 {
		t.Fatalf("id 9 was burned by the rejected request: %v %v", ids, err)
	}
}

func intp(v int) *int { return &v }

// TestTenantRegistration pins the tenant resource: validation,
// conflict on duplicates (including the implicit default tenant), and
// the normalized response.
func TestTenantRegistration(t *testing.T) {
	_, _, c := newManualV2Server(t, server.Config{})
	ctx := context.Background()

	for _, bad := range []api.TenantSpec{
		{},                                    // missing id
		{ID: "sp ace"},                        // charset
		{ID: "x", Weight: -1},                 // negative weight
		{ID: "x", MaxQueue: -2},               // negative quota
		{ID: "x", SDDefault: 1.5},             // out of range
		{ID: "x", MaxSD: 0.5, SDDefault: 0.7}, // default above cap
	} {
		if _, err := c.CreateTenant(ctx, bad); !errors.Is(err, client.ErrBadRequest) {
			t.Fatalf("spec %+v: want ErrBadRequest, got %v", bad, err)
		}
	}
	if _, err := c.CreateTenant(ctx, api.TenantSpec{ID: api.DefaultTenant}); !errors.Is(err, client.ErrConflict) {
		t.Fatalf("re-registering the default tenant must conflict, got %v", err)
	}
	spec, err := c.CreateTenant(ctx, api.TenantSpec{ID: "acme"})
	if err != nil || spec.Weight != 1 {
		t.Fatalf("normalized weight: %+v %v", spec, err)
	}
}

// TestTenantPolicyApplied pins SD defaulting, the max_sd cap and the
// secure-only risk policy at submission time.
func TestTenantPolicyApplied(t *testing.T) {
	_, ts, c := newManualV2Server(t, server.Config{
		Tenants: []api.TenantSpec{
			{ID: "locked", SDDefault: 0.8, MaxSD: 0.85, SecureOnly: true},
		},
	})
	ctx := context.Background()
	arr := 0.0

	// Over the tenant's SD cap: rejected.
	_, err := c.Submit(ctx, "locked", []api.JobSpec{{Arrival: &arr, Workload: 100, SD: 0.9}})
	if !errors.Is(err, client.ErrBadRequest) {
		t.Fatalf("want ErrBadRequest over max_sd, got %v", err)
	}
	// Omitted SD takes the tenant default.
	if _, err := c.Submit(ctx, "locked", []api.JobSpec{{Arrival: &arr, Workload: 100}}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	// The arrived event records the defaulted SD and the tenant.
	resp, err := http.Get(ts.URL + "/v2/events?kinds=arrived&tenant=locked")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), `"sd":0.8`) || !strings.Contains(string(body), `"tenant":"locked"`) ||
		!strings.Contains(string(body), `"safe_only":true`) {
		t.Fatalf("arrived event missing defaulted sd/tenant/safe_only: %s", body)
	}
	// Secure-only tenants never place riskily even in frisky mode: the
	// placement events must carry no risky flag.
	events, err := http.Get(ts.URL + "/v2/events?kinds=placed&tenant=locked")
	if err != nil {
		t.Fatal(err)
	}
	placed, _ := io.ReadAll(events.Body)
	events.Body.Close()
	if len(placed) == 0 || strings.Contains(string(placed), `"risky":true`) {
		t.Fatalf("secure-only placement took risk (or no placements): %s", placed)
	}
}

// TestQueueQuota429 pins admission control: a tenant over its queue
// quota gets 429 with Retry-After; quota is released as jobs place, so
// the same submission later succeeds; other tenants are unaffected.
func TestQueueQuota429(t *testing.T) {
	_, _, c := newManualV2Server(t, server.Config{
		Tenants: []api.TenantSpec{{ID: "capped", MaxQueue: 2}, {ID: "free"}},
	})
	ctx := context.Background()
	arr := 0.0
	job := api.JobSpec{Arrival: &arr, Workload: 100, SD: 0.7}

	if _, err := c.Submit(ctx, "capped", []api.JobSpec{job, job}); err != nil {
		t.Fatal(err)
	}
	_, err := c.Submit(ctx, "capped", []api.JobSpec{job})
	if !errors.Is(err, client.ErrOverQuota) {
		t.Fatalf("want ErrOverQuota, got %v", err)
	}
	if ra := client.RetryAfter(err); ra <= 0 {
		t.Fatalf("Retry-After hint missing")
	}
	// Unrelated tenants keep flowing.
	if _, err := c.Submit(ctx, "free", []api.JobSpec{job}); err != nil {
		t.Fatal(err)
	}
	// Scheduling the backlog frees the quota.
	if _, err := c.Advance(ctx, api.AdvanceRequest{To: 1000}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(ctx, "capped", []api.JobSpec{job}); err != nil {
		t.Fatalf("quota not released after placement: %v", err)
	}
	rep, err := c.Metrics(ctx, "capped")
	if err != nil {
		t.Fatal(err)
	}
	tm := rep.Tenants["capped"]
	if tm.Rejected != 1 || tm.Submitted != 3 || tm.Queued != 1 {
		t.Fatalf("capped tenant metrics: %+v", tm)
	}
	if rep.Rejected != 1 {
		t.Fatalf("global rejected counter: %+v", rep.Rejected)
	}
}

// TestPerTenantMetricsAndLatency drives two tenants in live mode and
// checks the per-tenant counters and latency windows diverge correctly.
func TestPerTenantMetricsAndLatency(t *testing.T) {
	setup := experiments.TestSetup()
	w, err := setup.PSAWorkload(1, 10)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{
		Sites: w.Sites, Algo: "minmin", Seed: 1, Setup: setup,
		BatchInterval: 5000, Tick: 2 * time.Millisecond,
		Tenants: []api.TenantSpec{{ID: "a", Weight: 2}, {ID: "b"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop(false)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := client.New(ts.URL)
	ctx := context.Background()

	for i := 0; i < 6; i++ {
		tenant := "a"
		if i%3 == 0 {
			tenant = "b"
		}
		if _, err := c.Submit(ctx, tenant, []api.JobSpec{{Workload: 15000, SD: 0.7}}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		rep, err := c.Metrics(ctx, "")
		if err != nil {
			t.Fatal(err)
		}
		a, b := rep.Tenants["a"], rep.Tenants["b"]
		if a.Completed == 4 && b.Completed == 2 {
			if a.Weight != 2 || b.Weight != 1 {
				t.Fatalf("weights in report: %+v %+v", a, b)
			}
			if a.Latency.Count != 4 || b.Latency.Count != 2 {
				t.Fatalf("latency windows: %+v %+v", a.Latency, b.Latency)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out: %+v", rep.Tenants)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestPrometheusExposition smoke-checks /metrics.prom: text format,
// global counters and per-tenant labelled series.
func TestPrometheusExposition(t *testing.T) {
	_, ts, c := newManualV2Server(t, server.Config{
		Tenants: []api.TenantSpec{{ID: "acme", Weight: 2}},
	})
	ctx := context.Background()
	arr := 0.0
	if _, err := c.Submit(ctx, "acme", []api.JobSpec{{Arrival: &arr, Workload: 100, SD: 0.7}}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/metrics.prom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	for _, want := range []string{
		"# TYPE trustgrid_submitted_jobs_total counter",
		"trustgrid_submitted_jobs_total 1",
		"trustgrid_completed_jobs_total 1",
		"# TYPE trustgrid_virtual_time_seconds gauge",
		`trustgrid_tenant_submitted_jobs_total{tenant="acme"} 1`,
		`trustgrid_tenant_queued_jobs{tenant="acme"} 0`,
		`trustgrid_tenant_submitted_jobs_total{tenant="default"} 0`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
}

// TestV1ShimDefaultTenant pins the shim semantics: /v1/jobs lands on
// the default tenant, visible in v2 accounting, and v1 job events carry
// the default tenant label.
func TestV1ShimDefaultTenant(t *testing.T) {
	_, ts, c := newManualV2Server(t, server.Config{})
	ctx := context.Background()
	arr := 0.0
	if _, err := c.Submit(ctx, "", []api.JobSpec{{Arrival: &arr, Workload: 100, SD: 0.7}}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	rep, err := c.Metrics(ctx, api.DefaultTenant)
	if err != nil {
		t.Fatal(err)
	}
	if tm := rep.Tenants[api.DefaultTenant]; tm.Submitted != 1 || tm.Completed != 1 {
		t.Fatalf("default tenant accounting: %+v", rep.Tenants)
	}
	resp, err := http.Get(ts.URL + "/v1/events?kinds=placed")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), `"tenant":"default"`) {
		t.Fatalf("v1 placed event without default tenant: %s", body)
	}
}
