package heuristics

import (
	"testing"

	"trustgrid/internal/grid"
	"trustgrid/internal/sched"
	"trustgrid/internal/sched/kernel"
)

// Without engine-installed ranks the column defaults to mean ETC, so
// RankMinMin schedules largest-first, each job to its earliest-finish
// eligible site.
func TestRankMinMinDefaultsToLargestFirst(t *testing.T) {
	sites := sitesWithSpeeds(10, 10)
	jobs := jobsWithWork(100, 400, 200)
	st := testState(sites)

	as := NewRankMinMin(grid.RiskyPolicy()).Schedule(jobs, st)
	if err := sched.ValidateAssignments(jobs, as, len(sites)); err != nil {
		t.Fatal(err)
	}
	wantOrder := []int{1, 2, 0} // descending workload
	for i, a := range as {
		if a.Job.ID != wantOrder[i] {
			t.Fatalf("emission %d is job %d, want %d (largest-first)", i, a.Job.ID, wantOrder[i])
		}
	}
	// 400 and 200 land on distinct sites; 100 joins the 200 queue (its
	// completion there, 30, beats 50 behind the 400-job).
	if as[0].Site == as[1].Site {
		t.Fatalf("two heaviest jobs share site %d", as[0].Site)
	}
	if as[2].Site != as[1].Site {
		t.Fatalf("smallest job on site %d, want %d", as[2].Site, as[1].Site)
	}
}

// With installed ranks, a small job heading a heavy blocked chain
// schedules before a large independent job.
func TestRankMinMinHonorsInstalledRanks(t *testing.T) {
	sites := sitesWithSpeeds(10, 10)
	jobs := jobsWithWork(100, 400)
	st := testState(sites)
	k := kernel.Build(st.Now, st.Sites, st.Ready, nil, jobs)
	// Job 0 (workload 100) heads a chain worth 900; job 1 is alone.
	k.SetRanks([]float64{90, 40})
	st.Kern = k

	as := NewRankMinMin(grid.RiskyPolicy()).Schedule(jobs, st)
	if err := sched.ValidateAssignments(jobs, as, len(sites)); err != nil {
		t.Fatal(err)
	}
	if as[0].Job.ID != 0 {
		t.Fatalf("first emission is job %d, want chain head 0", as[0].Job.ID)
	}
}

// Equal ranks fall back to batch (arrival) order, pinning determinism.
func TestRankMinMinTiesKeepBatchOrder(t *testing.T) {
	sites := sitesWithSpeeds(5, 5, 5)
	jobs := jobsWithWork(100, 100, 100, 100)
	st := testState(sites)
	as := NewRankMinMin(grid.RiskyPolicy()).Schedule(jobs, st)
	for i, a := range as {
		if a.Job.ID != i {
			t.Fatalf("emission %d is job %d, want batch order", i, a.Job.ID)
		}
	}
}

// The scheduler must respect admission: a must-be-safe job with no
// strictly safe site uses the fallback and flags it.
func TestRankMinMinFallback(t *testing.T) {
	sites := []*grid.Site{
		{ID: 0, Speed: 10, Nodes: 1, SecurityLevel: 0.5},
		{ID: 1, Speed: 5, Nodes: 1, SecurityLevel: 0.7},
	}
	jobs := []*grid.Job{{ID: 0, Workload: 100, Nodes: 1, SecurityDemand: 0.9, MustBeSafe: true}}
	st := testState(sites)
	as := NewRankMinMin(grid.SecurePolicy()).Schedule(jobs, st)
	if len(as) != 1 || !as[0].FellBack {
		t.Fatalf("expected fallback assignment, got %+v", as)
	}
	if as[0].Site != 1 {
		t.Fatalf("fallback chose site %d, want max-SL site 1", as[0].Site)
	}
}

func TestRankMinMinEmptyBatch(t *testing.T) {
	if as := NewRankMinMin(grid.RiskyPolicy()).Schedule(nil, testState(sitesWithSpeeds(1))); len(as) != 0 {
		t.Fatalf("empty batch produced %d assignments", len(as))
	}
}
