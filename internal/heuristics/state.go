package heuristics

import (
	"encoding/json"
	"fmt"

	"trustgrid/internal/rng"
)

// randomState is the serializable cross-batch state of the Random
// scheduler: just its stream position. The deterministic heuristics
// (Min-Min, Sufferage, MCT, MET, OLB) carry no state between batches
// and need no counterpart.
type randomState struct {
	Rand rng.State `json:"rand"`
}

// SaveState implements sched.StatefulScheduler.
func (r *Random) SaveState() ([]byte, error) {
	return json.Marshal(randomState{Rand: r.Rand.State()})
}

// RestoreState implements sched.StatefulScheduler.
func (r *Random) RestoreState(data []byte) error {
	var st randomState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("heuristics: restore: %w", err)
	}
	r.Rand.SetState(st.Rand)
	return nil
}
