package heuristics

import (
	"testing"

	"trustgrid/internal/grid"
	"trustgrid/internal/sched"
)

func TestMaxMinSchedulesLargestFirst(t *testing.T) {
	sites := sitesWithSpeeds(1, 1)
	jobs := jobsWithWork(5, 2, 9)
	st := testState(sites)
	as := NewMaxMin(grid.RiskyPolicy()).Schedule(jobs, st)
	if as[0].Job.ID != 2 {
		t.Fatalf("Max-Min must schedule the max-CT job first, got job %d", as[0].Job.ID)
	}
	if err := sched.ValidateAssignments(jobs, as, len(sites)); err != nil {
		t.Fatal(err)
	}
}

func TestMaxMinAvoidsStrandedGiant(t *testing.T) {
	// One giant job plus small filler: Max-Min places the giant first on
	// the fast site, so its batch makespan is no worse than Min-Min's.
	sites := sitesWithSpeeds(10, 2)
	jobs := jobsWithWork(400, 100, 100, 100)
	st := testState(sites)
	mm := makespanOf(NewMinMin(grid.RiskyPolicy()).Schedule(jobs, st), st)
	xm := makespanOf(NewMaxMin(grid.RiskyPolicy()).Schedule(jobs, st), st)
	if xm > mm*1.2 {
		t.Fatalf("Max-Min (%v) unexpectedly lost badly to Min-Min (%v)", xm, mm)
	}
}

func TestMaxMinSecureRestriction(t *testing.T) {
	sites := []*grid.Site{
		{ID: 0, Speed: 100, Nodes: 1, SecurityLevel: 0.5},
		{ID: 1, Speed: 1, Nodes: 1, SecurityLevel: 0.99},
	}
	jobs := jobsWithWork(10, 20)
	for _, j := range jobs {
		j.SecurityDemand = 0.8
	}
	st := testState(sites)
	for _, a := range NewMaxMin(grid.SecurePolicy()).Schedule(jobs, st) {
		if a.Site != 1 {
			t.Fatal("secure Max-Min must avoid unsafe sites")
		}
	}
}

func TestKPBRestrictsToFastSites(t *testing.T) {
	// Sites with speeds 1..10; 20% of 10 eligible sites = the 2 fastest.
	speeds := make([]float64, 10)
	for i := range speeds {
		speeds[i] = float64(i + 1)
	}
	sites := sitesWithSpeeds(speeds...)
	jobs := jobsWithWork(100)
	st := testState(sites)
	as := NewKPB(grid.RiskyPolicy(), 20).Schedule(jobs, st)
	if as[0].Site != 9 && as[0].Site != 8 {
		t.Fatalf("KPB(20%%) must use one of the two fastest sites, got %d", as[0].Site)
	}
}

func TestKPBHonorsAvailabilityWithinSubset(t *testing.T) {
	sites := sitesWithSpeeds(1, 9, 10)
	jobs := jobsWithWork(100)
	st := testState(sites)
	st.Ready[2] = 1e6 // fastest site heavily backlogged
	// 67% of 3 sites → 2 fastest kept (speeds 9, 10); availability picks 9.
	as := NewKPB(grid.RiskyPolicy(), 67).Schedule(jobs, st)
	if as[0].Site != 1 {
		t.Fatalf("KPB should fall back to the free fast site, got %d", as[0].Site)
	}
}

func TestKPBDefaultsPercent(t *testing.T) {
	k := NewKPB(grid.RiskyPolicy(), 0)
	if k.percent() != 20 {
		t.Fatalf("default percent %v, want 20", k.percent())
	}
	k2 := NewKPB(grid.RiskyPolicy(), 150)
	if k2.percent() != 20 {
		t.Fatalf("out-of-range percent must default, got %v", k2.percent())
	}
	if k.Name() == "" || k2.Name() == "" {
		t.Fatal("empty names")
	}
}

func TestKPBContract(t *testing.T) {
	sites := sitesWithSpeeds(1, 2, 3, 4, 5)
	jobs := jobsWithWork(10, 20, 30, 40)
	st := testState(sites)
	as := NewKPB(grid.FRiskyPolicy(0.5), 40).Schedule(jobs, st)
	if err := sched.ValidateAssignments(jobs, as, len(sites)); err != nil {
		t.Fatal(err)
	}
}

func TestMaxMinEmptyBatch(t *testing.T) {
	st := testState(sitesWithSpeeds(1))
	if got := NewMaxMin(grid.RiskyPolicy()).Schedule(nil, st); len(got) != 0 {
		t.Fatal("empty batch must return no assignments")
	}
	if got := NewKPB(grid.RiskyPolicy(), 20).Schedule(nil, st); len(got) != 0 {
		t.Fatal("empty batch must return no assignments")
	}
}
