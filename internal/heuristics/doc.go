// Package heuristics implements the security-driven batch scheduling
// heuristics of the paper's §2 — Min-Min and Sufferage under the secure,
// risky and f-risky modes — plus the classic MCT, MET, OLB and Random
// mapping heuristics of Braun et al. as additional baselines.
//
// All heuristics operate on a snapshot of the site ready times: they copy
// st.Ready and update the copy as they greedily place jobs, exactly as in
// Maheswaran et al.'s batch-mode formulation.
//
// DESIGN.md §1.1 inventory row: security-driven Min-Min, Sufferage, and the MCT / MET / OLB / Random baselines.
package heuristics
