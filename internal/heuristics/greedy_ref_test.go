package heuristics

import (
	"math"
	"testing"

	"trustgrid/internal/grid"
	"trustgrid/internal/rng"
	"trustgrid/internal/sched"
)

// referenceGreedy is a frozen copy of the pre-kernel greedyBatch: every
// round recomputes every unscheduled job's best and second-best
// completion times from scratch. The incremental implementation must
// reproduce it assignment-for-assignment — including every tie — on any
// input, which TestGreedyMatchesReference checks over randomized
// instances. Keep this in sync with nothing: it is the oracle.
func referenceGreedy(batch []*grid.Job, st *sched.State, policy grid.Policy, rule string) []sched.Assignment {
	type cand struct {
		jobIdx   int
		bestSite int
		bestCT   float64
		secondCT float64
		fellBack bool
	}
	pick := func(cands []cand) int {
		best := 0
		switch rule {
		case "minmin":
			for i := 1; i < len(cands); i++ {
				if cands[i].bestCT < cands[best].bestCT {
					best = i
				}
			}
		case "maxmin":
			for i := 1; i < len(cands); i++ {
				if cands[i].bestCT > cands[best].bestCT {
					best = i
				}
			}
		case "sufferage":
			bestVal := cands[0].secondCT - cands[0].bestCT
			for i := 1; i < len(cands); i++ {
				if v := cands[i].secondCT - cands[i].bestCT; v > bestVal {
					best, bestVal = i, v
				}
			}
		}
		return best
	}

	n := len(batch)
	out := make([]sched.Assignment, 0, n)
	if n == 0 {
		return out
	}
	ready := make([]float64, len(st.Ready))
	copy(ready, st.Ready)
	work := sched.State{Now: st.Now, Sites: st.Sites, Ready: ready}

	remaining := make([]int, n)
	for i := range remaining {
		remaining[i] = i
	}
	eligible := make([][]int, n)
	fellBack := make([]bool, n)
	for i, j := range batch {
		eligible[i], fellBack[i] = st.EligibleSites(policy, j)
	}

	var cands []cand
	for len(remaining) > 0 {
		cands = cands[:0]
		for _, jobIdx := range remaining {
			j := batch[jobIdx]
			c := cand{jobIdx: jobIdx, bestSite: -1,
				bestCT: math.Inf(1), secondCT: math.Inf(1), fellBack: fellBack[jobIdx]}
			for _, site := range eligible[jobIdx] {
				ct := work.CompletionTime(j, site)
				switch {
				case ct < c.bestCT:
					c.secondCT = c.bestCT
					c.bestCT = ct
					c.bestSite = site
				case ct < c.secondCT:
					c.secondCT = ct
				}
			}
			cands = append(cands, c)
		}
		winner := cands[pick(cands)]
		j := batch[winner.jobIdx]
		out = append(out, sched.Assignment{Job: j, Site: winner.bestSite, FellBack: winner.fellBack})
		work.Ready[winner.bestSite] = winner.bestCT
		for k, idx := range remaining {
			if idx == winner.jobIdx {
				remaining = append(remaining[:k], remaining[k+1:]...)
				break
			}
		}
	}
	return out
}

// randomGreedyInstance mirrors the kernel property tests' generator:
// duplicate SLs and speeds (real ties), impossible demands, dead sites.
// m is the site count; large values exercise the bucket and lazy-heap
// paths at the scale where the old rescan implementation's pile-on
// pathology lived.
func randomGreedyInstance(r *rng.Stream, m int) ([]*grid.Job, *sched.State) {
	levels := []float64{0.3, 0.5, 0.5, 0.8, 1.0}
	speeds := []float64{10, 10, 20, 40, 80}
	sites := make([]*grid.Site, m)
	for k := range sites {
		sites[k] = &grid.Site{ID: k, Speed: speeds[r.Intn(len(speeds))], Nodes: 1,
			SecurityLevel: levels[r.Intn(len(levels))]}
	}
	n := 1 + r.Intn(25)
	jobs := make([]*grid.Job, n)
	workloads := []float64{100, 100, 5000, 5000, 90000}
	for i := range jobs {
		jobs[i] = &grid.Job{ID: i, Workload: workloads[r.Intn(len(workloads))], Nodes: 1,
			SecurityDemand: r.Float64(), MustBeSafe: r.Bool(0.2)}
	}
	ready := make([]float64, m)
	for k := range ready {
		// Coarse grid so ready-time ties actually occur.
		ready[k] = float64(r.Intn(4)) * 100
	}
	var alive []bool
	if r.Bool(0.4) {
		alive = make([]bool, m)
		for k := range alive {
			alive[k] = r.Bool(0.8)
		}
		alive[r.Intn(m)] = true // the engine never hands a batch a dead grid
	}
	return jobs, &sched.State{Now: float64(r.Intn(3)) * 150, Sites: sites, Ready: ready, Alive: alive}
}

// TestGreedyMatchesReference pins the incremental greedyBatch to the
// full-recompute oracle, bit for bit, across random instances designed
// to hit ties, fallbacks and dead sites.
func TestGreedyMatchesReference(t *testing.T) {
	r := rng.New(20260730)
	rules := []struct {
		name string
		mk   func(grid.Policy) sched.Scheduler
	}{
		{"minmin", func(p grid.Policy) sched.Scheduler { return NewMinMin(p) }},
		{"maxmin", func(p grid.Policy) sched.Scheduler { return NewMaxMin(p) }},
		{"sufferage", func(p grid.Policy) sched.Scheduler { return NewSufferage(p) }},
	}
	for trial := 0; trial < 400; trial++ {
		// Most trials stay small (dense tie coverage); every tenth runs
		// large — up to, and twice exactly, m=1024 — so the candidate
		// structures are pinned to the oracle at the scale they were
		// built for.
		m := 1 + r.Intn(10)
		switch {
		case trial == 100 || trial == 300:
			m = 1024
		case trial%10 == 5:
			m = 1 + r.Intn(1024)
		}
		jobs, st := randomGreedyInstance(r, m)
		var policy grid.Policy
		switch r.Intn(3) {
		case 0:
			policy = grid.SecurePolicy()
		case 1:
			policy = grid.RiskyPolicy()
		default:
			policy = grid.FRiskyPolicy(r.Float64())
		}
		for _, rule := range rules {
			want := referenceGreedy(jobs, st, policy, rule.name)
			// Fresh state per run: Schedule caches the snapshot on it.
			got := rule.mk(policy).Schedule(jobs, &sched.State{
				Now: st.Now, Sites: st.Sites, Ready: st.Ready, Alive: st.Alive,
			})
			if len(got) != len(want) {
				t.Fatalf("trial %d %s: %d assignments, want %d", trial, rule.name, len(got), len(want))
			}
			for i := range want {
				if got[i].Job.ID != want[i].Job.ID || got[i].Site != want[i].Site ||
					got[i].FellBack != want[i].FellBack {
					t.Fatalf("trial %d %s: assignment %d = (job %d, site %d, fb %v), want (job %d, site %d, fb %v)",
						trial, rule.name, i,
						got[i].Job.ID, got[i].Site, got[i].FellBack,
						want[i].Job.ID, want[i].Site, want[i].FellBack)
				}
			}
		}
	}
}
