package heuristics

import (
	"testing"
	"testing/quick"

	"trustgrid/internal/grid"
	"trustgrid/internal/rng"
	"trustgrid/internal/sched"
)

// testState builds a State with fresh ready times.
func testState(sites []*grid.Site) *sched.State {
	return &sched.State{Now: 0, Sites: sites, Ready: make([]float64, len(sites))}
}

// sitesWithSpeeds builds safe sites (SL=1) with the given speeds.
func sitesWithSpeeds(speeds ...float64) []*grid.Site {
	sites := make([]*grid.Site, len(speeds))
	for i, sp := range speeds {
		sites[i] = &grid.Site{ID: i, Speed: sp, Nodes: 1, SecurityLevel: 1.0}
	}
	return sites
}

// jobsWithWork builds jobs with the given workloads, SD=0.6, arrival 0.
func jobsWithWork(work ...float64) []*grid.Job {
	jobs := make([]*grid.Job, len(work))
	for i, w := range work {
		jobs[i] = &grid.Job{ID: i, Workload: w, Nodes: 1, SecurityDemand: 0.6}
	}
	return jobs
}

// makespanOf simulates the serial per-site queues implied by a batch
// assignment and returns the batch makespan.
func makespanOf(as []sched.Assignment, st *sched.State) float64 {
	ready := append([]float64(nil), st.Ready...)
	for _, a := range as {
		start := ready[a.Site]
		if st.Now > start {
			start = st.Now
		}
		ready[a.Site] = start + st.Sites[a.Site].ExecTime(a.Job)
	}
	max := 0.0
	for _, r := range ready {
		if r > max {
			max = r
		}
	}
	return max
}

// TestMinMinVsSufferageRankOne reproduces the classic batch situation
// (Maheswaran et al. 1999) on which Sufferage beats Min-Min. The
// aggregate-speed model cannot express an arbitrary ETC matrix (it is
// rank-1: workload/speed), so we build a rank-1 instance with the same
// qualitative property: many small jobs plus one large job, two sites
// with very different speeds.
func TestMinMinVsSufferageRankOne(t *testing.T) {
	// Site 0 fast, site 1 slow.
	sites := sitesWithSpeeds(10, 2)
	// Three small jobs and one huge job.
	jobs := jobsWithWork(100, 100, 100, 400)
	st := testState(sites)

	mm := NewMinMin(grid.RiskyPolicy()).Schedule(jobs, st)
	if err := sched.ValidateAssignments(jobs, mm, len(sites)); err != nil {
		t.Fatal(err)
	}
	sf := NewSufferage(grid.RiskyPolicy()).Schedule(jobs, st)
	if err := sched.ValidateAssignments(jobs, sf, len(sites)); err != nil {
		t.Fatal(err)
	}
	mmSpan := makespanOf(mm, st)
	sfSpan := makespanOf(sf, st)
	if sfSpan > mmSpan {
		t.Fatalf("Sufferage (%v) should not lose to Min-Min (%v) here", sfSpan, mmSpan)
	}
}

func TestMinMinSchedulesSmallestFirst(t *testing.T) {
	sites := sitesWithSpeeds(1, 1)
	jobs := jobsWithWork(5, 2, 9) // J1 (ID 1) has the smallest earliest CT
	st := testState(sites)
	as := NewMinMin(grid.RiskyPolicy()).Schedule(jobs, st)
	if as[0].Job.ID != 1 {
		t.Fatalf("Min-Min must schedule the min-CT job first, got job %d", as[0].Job.ID)
	}
}

func TestSufferagePrefersHighSufferageJob(t *testing.T) {
	// Site speeds 4 and 1: job ETCs are w/4 vs w. Sufferage = 3w/4,
	// so the largest job suffers most and is placed first.
	sites := sitesWithSpeeds(4, 1)
	jobs := jobsWithWork(4, 12, 8)
	st := testState(sites)
	as := NewSufferage(grid.RiskyPolicy()).Schedule(jobs, st)
	if as[0].Job.ID != 1 {
		t.Fatalf("Sufferage must place the max-sufferage job first, got job %d", as[0].Job.ID)
	}
	if as[0].Site != 0 {
		t.Fatalf("max-sufferage job should get its best site 0, got %d", as[0].Site)
	}
}

func TestSecureModeNeverTakesRisk(t *testing.T) {
	sites := []*grid.Site{
		{ID: 0, Speed: 100, Nodes: 1, SecurityLevel: 0.5}, // fast but unsafe
		{ID: 1, Speed: 1, Nodes: 1, SecurityLevel: 0.99},  // slow but safe
	}
	jobs := jobsWithWork(10, 10, 10)
	for _, j := range jobs {
		j.SecurityDemand = 0.8
	}
	st := testState(sites)
	for _, s := range []sched.Scheduler{
		NewMinMin(grid.SecurePolicy()),
		NewSufferage(grid.SecurePolicy()),
		NewMCT(grid.SecurePolicy()),
		NewMET(grid.SecurePolicy()),
		NewOLB(grid.SecurePolicy()),
		NewRandom(grid.SecurePolicy(), rng.New(1)),
	} {
		for _, a := range s.Schedule(jobs, st) {
			if a.Site != 1 {
				t.Errorf("%s dispatched to unsafe site", s.Name())
			}
		}
	}
}

func TestRiskyModeUsesFastUnsafeSite(t *testing.T) {
	sites := []*grid.Site{
		{ID: 0, Speed: 100, Nodes: 1, SecurityLevel: 0.5},
		{ID: 1, Speed: 1, Nodes: 1, SecurityLevel: 0.99},
	}
	jobs := jobsWithWork(10)
	jobs[0].SecurityDemand = 0.8
	st := testState(sites)
	as := NewMinMin(grid.RiskyPolicy()).Schedule(jobs, st)
	if as[0].Site != 0 {
		t.Fatal("risky Min-Min should use the fast unsafe site")
	}
}

func TestFRiskyIntermediate(t *testing.T) {
	// deficit site0 = 0.30 (P≈0.59 > 0.5 → rejected),
	// deficit site1 = 0.10 (P≈0.26 ≤ 0.5 → admitted).
	sites := []*grid.Site{
		{ID: 0, Speed: 100, Nodes: 1, SecurityLevel: 0.50},
		{ID: 1, Speed: 50, Nodes: 1, SecurityLevel: 0.70},
		{ID: 2, Speed: 1, Nodes: 1, SecurityLevel: 0.99},
	}
	jobs := jobsWithWork(10)
	jobs[0].SecurityDemand = 0.8
	st := testState(sites)
	as := NewMinMin(grid.FRiskyPolicy(0.5)).Schedule(jobs, st)
	if as[0].Site != 1 {
		t.Fatalf("0.5-risky should pick the moderately risky fast site, got %d", as[0].Site)
	}
}

func TestMustBeSafeJobsRestricted(t *testing.T) {
	sites := []*grid.Site{
		{ID: 0, Speed: 100, Nodes: 1, SecurityLevel: 0.5},
		{ID: 1, Speed: 1, Nodes: 1, SecurityLevel: 0.95},
	}
	jobs := jobsWithWork(10)
	jobs[0].SecurityDemand = 0.8
	jobs[0].MustBeSafe = true
	st := testState(sites)
	as := NewMinMin(grid.RiskyPolicy()).Schedule(jobs, st)
	if as[0].Site != 1 {
		t.Fatal("must-be-safe job must go to the strictly safe site even in risky mode")
	}
}

func TestEmptyBatch(t *testing.T) {
	sites := sitesWithSpeeds(1)
	st := testState(sites)
	for _, s := range []sched.Scheduler{
		NewMinMin(grid.RiskyPolicy()), NewSufferage(grid.RiskyPolicy()),
		NewMCT(grid.RiskyPolicy()), NewMET(grid.RiskyPolicy()),
		NewOLB(grid.RiskyPolicy()), NewRandom(grid.RiskyPolicy(), rng.New(1)),
	} {
		if got := s.Schedule(nil, st); len(got) != 0 {
			t.Errorf("%s on empty batch returned %d assignments", s.Name(), len(got))
		}
	}
}

func TestSchedulersDoNotMutateState(t *testing.T) {
	sites := sitesWithSpeeds(2, 3)
	jobs := jobsWithWork(5, 7, 9)
	st := testState(sites)
	st.Ready[0] = 10
	st.Ready[1] = 20
	for _, s := range []sched.Scheduler{
		NewMinMin(grid.RiskyPolicy()), NewSufferage(grid.RiskyPolicy()),
		NewMCT(grid.RiskyPolicy()), NewOLB(grid.RiskyPolicy()),
	} {
		_ = s.Schedule(jobs, st)
		if st.Ready[0] != 10 || st.Ready[1] != 20 {
			t.Fatalf("%s mutated st.Ready", s.Name())
		}
	}
}

func TestMETPicksFastestEligible(t *testing.T) {
	sites := sitesWithSpeeds(1, 5, 3)
	jobs := jobsWithWork(30)
	st := testState(sites)
	st.Ready[1] = 1e9 // MET ignores availability by definition
	as := NewMET(grid.RiskyPolicy()).Schedule(jobs, st)
	if as[0].Site != 1 {
		t.Fatalf("MET must ignore ready times, got site %d", as[0].Site)
	}
}

func TestOLBPicksEarliestFree(t *testing.T) {
	sites := sitesWithSpeeds(100, 1)
	jobs := jobsWithWork(30)
	st := testState(sites)
	st.Ready[0] = 50
	as := NewOLB(grid.RiskyPolicy()).Schedule(jobs, st)
	if as[0].Site != 1 {
		t.Fatalf("OLB must ignore speeds, got site %d", as[0].Site)
	}
}

func TestMCTRespectsReadyTimes(t *testing.T) {
	sites := sitesWithSpeeds(10, 1)
	jobs := jobsWithWork(10, 10)
	st := testState(sites)
	as := NewMCT(grid.RiskyPolicy()).Schedule(jobs, st)
	// First job: site0 CT=1, site1 CT=10 → site0. Second: site0 CT=2,
	// site1 CT=10 → site0 again (its queue is still faster).
	if as[0].Site != 0 || as[1].Site != 0 {
		t.Fatalf("MCT assignments = %d,%d, want 0,0", as[0].Site, as[1].Site)
	}
}

// Property: every heuristic returns exactly one assignment per job, all
// sites valid, under randomized inputs (including risk modes).
func TestSchedulingContractProperty(t *testing.T) {
	r := rng.New(77)
	mk := func(nJobs, nSites int, mode int) bool {
		sites := make([]*grid.Site, nSites)
		for i := range sites {
			sites[i] = &grid.Site{
				ID: i, Speed: 1 + r.Float64()*99, Nodes: 1,
				SecurityLevel: r.Uniform(0.4, 1.0),
			}
		}
		// Keep one guaranteed-safe site so fallback logic is exercised
		// rarely but feasibility is typical.
		sites[0].SecurityLevel = 0.97
		jobs := make([]*grid.Job, nJobs)
		for i := range jobs {
			jobs[i] = &grid.Job{
				ID: i, Workload: 1 + r.Float64()*1000, Nodes: 1,
				SecurityDemand: r.Uniform(0.6, 0.9),
				MustBeSafe:     r.Bool(0.1),
			}
		}
		var pol grid.Policy
		switch mode % 3 {
		case 0:
			pol = grid.SecurePolicy()
		case 1:
			pol = grid.RiskyPolicy()
		default:
			pol = grid.FRiskyPolicy(0.5)
		}
		st := testState(sites)
		for _, s := range []sched.Scheduler{
			NewMinMin(pol), NewSufferage(pol), NewMCT(pol),
			NewMET(pol), NewOLB(pol), NewRandom(pol, r.Derive("rand")),
		} {
			as := s.Schedule(jobs, st)
			if sched.ValidateAssignments(jobs, as, nSites) != nil {
				return false
			}
			// Policy respected (unless the assignment fell back).
			for _, a := range as {
				if !a.FellBack && !pol.Admits(a.Job, sites[a.Site]) {
					return false
				}
			}
		}
		return true
	}
	check := func(a, b, c uint8) bool {
		return mk(int(a%20)+1, int(b%6)+2, int(c))
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: Min-Min batch makespan is never worse than Random's
// expectation by a wide margin — sanity that the greedy logic helps.
func TestMinMinBeatsRandomTypically(t *testing.T) {
	r := rng.New(123)
	sites := sitesWithSpeeds(1, 2, 4, 8)
	wins := 0
	const trials = 30
	for i := 0; i < trials; i++ {
		jobs := make([]*grid.Job, 20)
		for k := range jobs {
			jobs[k] = &grid.Job{ID: k, Workload: 1 + r.Float64()*100, Nodes: 1, SecurityDemand: 0.6}
		}
		st := testState(sites)
		mm := makespanOf(NewMinMin(grid.RiskyPolicy()).Schedule(jobs, st), st)
		rd := makespanOf(NewRandom(grid.RiskyPolicy(), r.Derive("t")).Schedule(jobs, st), st)
		if mm <= rd {
			wins++
		}
	}
	if wins < trials*3/4 {
		t.Fatalf("Min-Min beat Random only %d/%d times", wins, trials)
	}
}

func TestCompletionTimeUsesNow(t *testing.T) {
	sites := sitesWithSpeeds(2)
	st := &sched.State{Now: 100, Sites: sites, Ready: []float64{50}}
	j := &grid.Job{ID: 0, Workload: 10, Nodes: 1, SecurityDemand: 0.6}
	if ct := st.CompletionTime(j, 0); ct != 105 {
		t.Fatalf("CompletionTime = %v, want max(now,ready)+etc = 105", ct)
	}
	st.Ready[0] = 200
	if ct := st.CompletionTime(j, 0); ct != 205 {
		t.Fatalf("CompletionTime = %v, want 205", ct)
	}
}

func TestValidateAssignmentsCatchesBugs(t *testing.T) {
	jobs := jobsWithWork(1, 2)
	bad := []sched.Assignment{
		{Job: jobs[0], Site: 0},
		{Job: jobs[0], Site: 1}, // duplicate
	}
	if err := sched.ValidateAssignments(jobs, bad, 2); err == nil {
		t.Fatal("duplicate assignment not caught")
	}
	bad2 := []sched.Assignment{
		{Job: jobs[0], Site: 0},
		{Job: jobs[1], Site: 9}, // out of range
	}
	if err := sched.ValidateAssignments(jobs, bad2, 2); err == nil {
		t.Fatal("invalid site not caught")
	}
	if err := sched.ValidateAssignments(jobs, bad2[:1], 2); err == nil {
		t.Fatal("missing assignment not caught")
	}
}

func TestGreedyDeterministicTieBreak(t *testing.T) {
	sites := sitesWithSpeeds(1, 1)
	jobs := jobsWithWork(5, 5, 5)
	st := testState(sites)
	a := NewMinMin(grid.RiskyPolicy()).Schedule(jobs, st)
	b := NewMinMin(grid.RiskyPolicy()).Schedule(jobs, st)
	for i := range a {
		if a[i].Job.ID != b[i].Job.ID || a[i].Site != b[i].Site {
			t.Fatal("Min-Min not deterministic under ties")
		}
	}
}
