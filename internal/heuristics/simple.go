package heuristics

import (
	"fmt"
	"math"

	"trustgrid/internal/grid"
	"trustgrid/internal/rng"
	"trustgrid/internal/sched"
)

// MCT (Minimum Completion Time) assigns jobs in arrival order, each to
// the eligible site with the earliest completion time. It is the
// immediate-mode baseline of Maheswaran et al. / Braun et al.
type MCT struct {
	Policy grid.Policy
}

// NewMCT builds an MCT scheduler under the given risk policy.
func NewMCT(p grid.Policy) *MCT { return &MCT{Policy: p} }

// Name implements sched.Scheduler.
func (m *MCT) Name() string { return fmt.Sprintf("MCT %s", m.Policy.Name()) }

// Schedule implements sched.Scheduler.
func (m *MCT) Schedule(batch []*grid.Job, st *sched.State) []sched.Assignment {
	k := st.Snapshot(batch)
	ready := append([]float64(nil), k.Ready...)
	out := make([]sched.Assignment, 0, len(batch))
	for i, j := range batch {
		elig := k.Eligible(m.Policy, i)
		row := k.ETC[i*k.M : (i+1)*k.M]
		best, bestCT := -1, math.Inf(1)
		for _, site := range elig.Sites {
			start := ready[site]
			if k.Now > start {
				start = k.Now
			}
			if ct := start + row[site]; ct < bestCT {
				best, bestCT = site, ct
			}
		}
		ready[best] = bestCT
		out = append(out, sched.Assignment{Job: j, Site: best, FellBack: elig.FellBack})
	}
	return out
}

// MET (Minimum Execution Time) assigns each job to the eligible site with
// the smallest raw execution time, ignoring availability — fast but prone
// to overloading the fastest site.
type MET struct {
	Policy grid.Policy
}

// NewMET builds an MET scheduler under the given risk policy.
func NewMET(p grid.Policy) *MET { return &MET{Policy: p} }

// Name implements sched.Scheduler.
func (m *MET) Name() string { return fmt.Sprintf("MET %s", m.Policy.Name()) }

// Schedule implements sched.Scheduler.
func (m *MET) Schedule(batch []*grid.Job, st *sched.State) []sched.Assignment {
	k := st.Snapshot(batch)
	out := make([]sched.Assignment, 0, len(batch))
	for i, j := range batch {
		elig := k.Eligible(m.Policy, i)
		row := k.ETC[i*k.M : (i+1)*k.M]
		best, bestET := -1, math.Inf(1)
		for _, site := range elig.Sites {
			if et := row[site]; et < bestET {
				best, bestET = site, et
			}
		}
		out = append(out, sched.Assignment{Job: j, Site: best, FellBack: elig.FellBack})
	}
	return out
}

// OLB (Opportunistic Load Balancing) assigns each job to the eligible
// site that becomes free earliest, ignoring execution times.
type OLB struct {
	Policy grid.Policy
}

// NewOLB builds an OLB scheduler under the given risk policy.
func NewOLB(p grid.Policy) *OLB { return &OLB{Policy: p} }

// Name implements sched.Scheduler.
func (o *OLB) Name() string { return fmt.Sprintf("OLB %s", o.Policy.Name()) }

// Schedule implements sched.Scheduler.
func (o *OLB) Schedule(batch []*grid.Job, st *sched.State) []sched.Assignment {
	k := st.Snapshot(batch)
	ready := append([]float64(nil), k.Ready...)
	out := make([]sched.Assignment, 0, len(batch))
	for i, j := range batch {
		elig := k.Eligible(o.Policy, i)
		best, bestReady := -1, math.Inf(1)
		for _, site := range elig.Sites {
			r := ready[site]
			if k.Now > r {
				r = k.Now
			}
			if r < bestReady {
				best, bestReady = site, r
			}
		}
		ready[best] = bestReady + k.ETC[i*k.M+best]
		out = append(out, sched.Assignment{Job: j, Site: best, FellBack: elig.FellBack})
	}
	return out
}

// Random assigns each job to a uniformly random eligible site. It is the
// floor every informed heuristic must beat.
type Random struct {
	Policy grid.Policy
	Rand   *rng.Stream
}

// NewRandom builds a Random scheduler under the given risk policy.
func NewRandom(p grid.Policy, r *rng.Stream) *Random { return &Random{Policy: p, Rand: r} }

// Name implements sched.Scheduler.
func (r *Random) Name() string { return fmt.Sprintf("Random %s", r.Policy.Name()) }

// Schedule implements sched.Scheduler.
func (r *Random) Schedule(batch []*grid.Job, st *sched.State) []sched.Assignment {
	k := st.Snapshot(batch)
	out := make([]sched.Assignment, 0, len(batch))
	for i, j := range batch {
		elig := k.Eligible(r.Policy, i)
		site := elig.Sites[r.Rand.Intn(len(elig.Sites))]
		out = append(out, sched.Assignment{Job: j, Site: site, FellBack: elig.FellBack})
	}
	return out
}
