package heuristics

import (
	"fmt"
	"math"
	"sort"

	"trustgrid/internal/grid"
	"trustgrid/internal/sched"
)

// RankMinMin is the critical-path-aware greedy variant for dependent
// workloads (DESIGN.md §14): a HEFT-style list scheduler. Jobs are
// ordered by descending upward rank — a job's mean execution time plus
// the heaviest chain of blocked successors waiting on it, installed by
// the engine on DAG rounds — and each takes the policy-eligible site
// with the earliest completion time. Scheduling the longest remaining
// chains first shortens the paths that bound a DAG's makespan, where
// plain Min-Min defers exactly those heavy jobs to the end.
//
// On batches without engine-installed ranks the column defaults to the
// mean ETC row (workload × mean inverse speed), so the order degrades
// to largest-job-first — a Max-Min-flavored independent-job heuristic.
// A RankMinMin value reuses its arenas across Schedule calls and is
// not safe for concurrent use.
type RankMinMin struct {
	Policy grid.Policy
	order  []int32
	start  []float64
}

// NewRankMinMin builds a RankMinMin scheduler under the given policy.
func NewRankMinMin(p grid.Policy) *RankMinMin { return &RankMinMin{Policy: p} }

// Name implements sched.Scheduler.
func (r *RankMinMin) Name() string { return fmt.Sprintf("Rank-Min-Min %s", r.Policy.Name()) }

// Schedule implements sched.Scheduler.
func (r *RankMinMin) Schedule(batch []*grid.Job, st *sched.State) []sched.Assignment {
	n := len(batch)
	if n == 0 {
		return nil
	}
	k := st.Snapshot(batch)
	ranks := k.Ranks()

	r.order = grow(r.order, n)
	order := r.order[:n]
	for i := range order {
		order[i] = int32(i)
	}
	// Descending rank; ties break on batch position (arrival order) so
	// the schedule is deterministic for equal-rank jobs.
	sort.SliceStable(order, func(a, b int) bool { return ranks[order[a]] > ranks[order[b]] })

	r.start = growF64(r.start, k.M)
	start := r.start[:k.M]
	for s := 0; s < k.M; s++ {
		v := k.Ready[s]
		if k.Now > v {
			v = k.Now
		}
		start[s] = v
	}

	out := make([]sched.Assignment, 0, n)
	for _, oi := range order {
		i := int(oi)
		elig := k.Eligible(r.Policy, i)
		row := k.ETC[i*k.M : (i+1)*k.M]
		best, bestCT := -1, math.Inf(1)
		for _, site := range elig.Sites {
			if ct := start[site] + row[site]; ct < bestCT {
				best, bestCT = site, ct
			}
		}
		start[best] = bestCT
		out = append(out, sched.Assignment{Job: batch[i], Site: best, FellBack: elig.FellBack})
	}
	return out
}
