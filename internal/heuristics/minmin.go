package heuristics

import (
	"fmt"

	"trustgrid/internal/grid"
	"trustgrid/internal/sched"
)

// MinMin is the security-driven Min-Min heuristic: repeatedly pick the
// (job, site) pair whose earliest completion time is smallest among each
// job's per-job minima, restricted to policy-eligible sites.
//
// The round loop runs on per-site sorted candidate buckets (see
// candidates.go) instead of per-job best-two rescans; the schedule is
// bit-identical to the full-recompute oracle in greedy_ref_test.go.
// A MinMin value reuses its bucket arenas across Schedule calls and is
// not safe for concurrent use.
type MinMin struct {
	Policy grid.Policy
	run    bucketRun
}

// NewMinMin builds a Min-Min scheduler under the given risk policy.
func NewMinMin(p grid.Policy) *MinMin { return &MinMin{Policy: p} }

// Name implements sched.Scheduler.
func (m *MinMin) Name() string { return fmt.Sprintf("Min-Min %s", m.Policy.Name()) }

// Schedule implements sched.Scheduler.
func (m *MinMin) Schedule(batch []*grid.Job, st *sched.State) []sched.Assignment {
	return m.run.minminBatch(batch, st, m.Policy)
}

// Sufferage is the security-driven Sufferage heuristic: pick the job that
// would "suffer" most (largest gap between its best and second-best
// completion times) and give it its best site.
//
// It runs on per-job lazy candidate heaps (see candidates.go); like
// MinMin, a value reuses its arenas and is not safe for concurrent use.
type Sufferage struct {
	Policy grid.Policy
	run    lazyRun
}

// NewSufferage builds a Sufferage scheduler under the given risk policy.
func NewSufferage(p grid.Policy) *Sufferage { return &Sufferage{Policy: p} }

// Name implements sched.Scheduler.
func (s *Sufferage) Name() string { return fmt.Sprintf("Sufferage %s", s.Policy.Name()) }

// Schedule implements sched.Scheduler.
func (s *Sufferage) Schedule(batch []*grid.Job, st *sched.State) []sched.Assignment {
	return s.run.lazyBatch(batch, st, s.Policy, pickSufferage)
}
