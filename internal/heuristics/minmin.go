package heuristics

import (
	"fmt"
	"math"

	"trustgrid/internal/grid"
	"trustgrid/internal/sched"
	"trustgrid/internal/sched/kernel"
)

// MinMin is the security-driven Min-Min heuristic: repeatedly pick the
// (job, site) pair whose earliest completion time is smallest among each
// job's per-job minima, restricted to policy-eligible sites.
type MinMin struct {
	Policy grid.Policy
}

// NewMinMin builds a Min-Min scheduler under the given risk policy.
func NewMinMin(p grid.Policy) *MinMin { return &MinMin{Policy: p} }

// Name implements sched.Scheduler.
func (m *MinMin) Name() string { return fmt.Sprintf("Min-Min %s", m.Policy.Name()) }

// Schedule implements sched.Scheduler.
func (m *MinMin) Schedule(batch []*grid.Job, st *sched.State) []sched.Assignment {
	return greedyBatch(batch, st, m.Policy, pickMinMin)
}

// Sufferage is the security-driven Sufferage heuristic: pick the job that
// would "suffer" most (largest gap between its best and second-best
// completion times) and give it its best site.
type Sufferage struct {
	Policy grid.Policy
}

// NewSufferage builds a Sufferage scheduler under the given risk policy.
func NewSufferage(p grid.Policy) *Sufferage { return &Sufferage{Policy: p} }

// Name implements sched.Scheduler.
func (s *Sufferage) Name() string { return fmt.Sprintf("Sufferage %s", s.Policy.Name()) }

// Schedule implements sched.Scheduler.
func (s *Sufferage) Schedule(batch []*grid.Job, st *sched.State) []sched.Assignment {
	return greedyBatch(batch, st, s.Policy, pickSufferage)
}

// greedyRun is the incremental state of one Min-Min/Sufferage/Max-Min
// batch: each unscheduled job's best and second-best completion times,
// kept current as assignments consume site availability. All slices are
// allocated once per batch; the round loop allocates nothing.
type greedyRun struct {
	k     *kernel.Snapshot
	ready []float64         // working copy of the snapshot's ready vector
	elig  []*kernel.EligSet // per batch job, shared class sets
	// bestSite/bestCT/secondCT are each unscheduled job's current best
	// option: the earliest-completing eligible site, its completion
	// time, and the second-smallest completion time (+Inf with a single
	// eligible site).
	bestSite []int
	bestCT   []float64
	secondCT []float64
}

// recompute rescans job i's eligible sites against the current working
// ready vector. The scan visits sites in ascending index order with
// strict comparisons, so ties resolve to the lowest site index — the
// rule the pre-kernel implementation applied implicitly.
func (g *greedyRun) recompute(i int) {
	row := g.k.ETC[i*g.k.M : (i+1)*g.k.M]
	now := g.k.Now
	best, bestCT, secondCT := -1, math.Inf(1), math.Inf(1)
	for _, site := range g.elig[i].Sites {
		start := g.ready[site]
		if now > start {
			start = now
		}
		ct := start + row[site]
		switch {
		case ct < bestCT:
			secondCT = bestCT
			bestCT = ct
			best = site
		case ct < secondCT:
			secondCT = ct
		}
	}
	g.bestSite[i], g.bestCT[i], g.secondCT[i] = best, bestCT, secondCT
}

// picker selects which position in remaining wins the current round.
// Every picker is a single pass with a strict comparison, so the
// deterministic tie rule is shared: among equal-valued candidates the
// earliest position in remaining wins, and remaining preserves batch
// submission order, so ties always resolve to the lowest batch index.
type picker func(g *greedyRun, remaining []int) int

// pickMinMin chooses the position whose job has the minimum earliest
// completion time. Tie rule: strict < keeps the first (lowest batch
// index) of any equal-valued run.
func pickMinMin(g *greedyRun, remaining []int) int {
	best := 0
	bestVal := g.bestCT[remaining[0]]
	for p := 1; p < len(remaining); p++ {
		if v := g.bestCT[remaining[p]]; v < bestVal {
			best, bestVal = p, v
		}
	}
	return best
}

// pickSufferage chooses the position whose job has the maximum sufferage
// value (second-best CT minus best CT). Jobs with a single eligible site
// have infinite sufferage and are placed first, as in the original
// heuristic. Tie rule: strict > keeps the first (lowest batch index) of
// any equal-valued run, including among the +Inf singletons.
func pickSufferage(g *greedyRun, remaining []int) int {
	best := 0
	bestVal := g.secondCT[remaining[0]] - g.bestCT[remaining[0]]
	for p := 1; p < len(remaining); p++ {
		if v := g.secondCT[remaining[p]] - g.bestCT[remaining[p]]; v > bestVal {
			best, bestVal = p, v
		}
	}
	return best
}

// greedyBatch runs the shared Min-Min/Sufferage/Max-Min loop on the
// columnar snapshot. Instead of recomputing every unscheduled job's
// candidate sites each round (O(n²·m) with per-round allocations), it
// computes each job's best/second-best once (O(n·m)) and then, after
// assigning a job to site s, rescans only the jobs whose stored values
// could be stale: those for which s's previous completion time was
// within their best two. For every other job, CT(·, s) sat strictly
// above its second-best and has only increased, so best and second-best
// are unchanged — the values (and therefore the schedule) are
// bit-identical to the full-recompute implementation, which
// TestGreedyMatchesReference pins against a reference copy.
func greedyBatch(batch []*grid.Job, st *sched.State, policy grid.Policy, pick picker) []sched.Assignment {
	n := len(batch)
	out := make([]sched.Assignment, 0, n)
	if n == 0 {
		return out
	}
	k := st.Snapshot(batch)
	m := k.M
	g := &greedyRun{
		k:        k,
		ready:    append([]float64(nil), k.Ready...),
		elig:     make([]*kernel.EligSet, n),
		bestSite: make([]int, n),
		bestCT:   make([]float64, n),
		secondCT: make([]float64, n),
	}
	for i := range batch {
		g.elig[i] = k.Eligible(policy, i)
		g.recompute(i)
	}
	remaining := make([]int, n)
	for i := range remaining {
		remaining[i] = i
	}
	for len(remaining) > 0 {
		pos := pick(g, remaining)
		win := remaining[pos]
		site := g.bestSite[win]
		out = append(out, sched.Assignment{Job: batch[win], Site: site, FellBack: g.elig[win].FellBack})
		// Dispatch on the working copy: the site is busy until completion.
		oldStart := g.ready[site]
		if k.Now > oldStart {
			oldStart = k.Now
		}
		g.ready[site] = g.bestCT[win]
		// Remove the winner (order-preserving, so the pickers' first-wins
		// tie rule keeps resolving to the lowest batch index).
		remaining = append(remaining[:pos], remaining[pos+1:]...)
		for _, i := range remaining {
			if g.elig[i].Has(site) && oldStart+k.ETC[i*m+site] <= g.secondCT[i] {
				g.recompute(i)
			}
		}
	}
	return out
}
