package heuristics

import (
	"fmt"
	"math"

	"trustgrid/internal/grid"
	"trustgrid/internal/sched"
)

// MinMin is the security-driven Min-Min heuristic: repeatedly pick the
// (job, site) pair whose earliest completion time is smallest among each
// job's per-job minima, restricted to policy-eligible sites.
type MinMin struct {
	Policy grid.Policy
}

// NewMinMin builds a Min-Min scheduler under the given risk policy.
func NewMinMin(p grid.Policy) *MinMin { return &MinMin{Policy: p} }

// Name implements sched.Scheduler.
func (m *MinMin) Name() string { return fmt.Sprintf("Min-Min %s", m.Policy.Name()) }

// Schedule implements sched.Scheduler.
func (m *MinMin) Schedule(batch []*grid.Job, st *sched.State) []sched.Assignment {
	return greedyBatch(batch, st, m.Policy, pickMinMin)
}

// Sufferage is the security-driven Sufferage heuristic: pick the job that
// would "suffer" most (largest gap between its best and second-best
// completion times) and give it its best site.
type Sufferage struct {
	Policy grid.Policy
}

// NewSufferage builds a Sufferage scheduler under the given risk policy.
func NewSufferage(p grid.Policy) *Sufferage { return &Sufferage{Policy: p} }

// Name implements sched.Scheduler.
func (s *Sufferage) Name() string { return fmt.Sprintf("Sufferage %s", s.Policy.Name()) }

// Schedule implements sched.Scheduler.
func (s *Sufferage) Schedule(batch []*grid.Job, st *sched.State) []sched.Assignment {
	return greedyBatch(batch, st, s.Policy, pickSufferage)
}

// candidate is one job's best options in the current greedy round.
type candidate struct {
	jobIdx   int
	bestSite int
	bestCT   float64
	secondCT float64 // +Inf when only one eligible site
	fellBack bool
}

// picker selects which candidate wins the current round.
type picker func(cands []candidate) int

// pickMinMin chooses the candidate with the minimum earliest completion
// time (ties: lower job index, for determinism).
func pickMinMin(cands []candidate) int {
	best := 0
	for i := 1; i < len(cands); i++ {
		if cands[i].bestCT < cands[best].bestCT {
			best = i
		}
	}
	return best
}

// pickSufferage chooses the candidate with the maximum sufferage value
// (second-best CT minus best CT). Jobs with a single eligible site have
// infinite sufferage and are placed first, as in the original heuristic.
func pickSufferage(cands []candidate) int {
	best := 0
	bestVal := cands[0].secondCT - cands[0].bestCT
	for i := 1; i < len(cands); i++ {
		v := cands[i].secondCT - cands[i].bestCT
		if v > bestVal {
			best, bestVal = i, v
		}
	}
	return best
}

// greedyBatch runs the shared Min-Min/Sufferage loop: each round,
// recompute every unscheduled job's best (and second-best) completion
// times over its eligible sites, let pick choose the winner, dispatch it
// on the working copy of the ready vector, repeat.
func greedyBatch(batch []*grid.Job, st *sched.State, policy grid.Policy, pick picker) []sched.Assignment {
	n := len(batch)
	out := make([]sched.Assignment, 0, n)
	if n == 0 {
		return out
	}
	ready := make([]float64, len(st.Ready))
	copy(ready, st.Ready)
	work := sched.State{Now: st.Now, Sites: st.Sites, Ready: ready}

	remaining := make([]int, n)
	for i := range remaining {
		remaining[i] = i
	}
	// Pre-compute eligibility once per job: site SLs and liveness are
	// static within a batch, so the eligible set never changes across
	// rounds. st.EligibleSites folds site liveness into admission.
	eligible := make([][]int, n)
	fellBack := make([]bool, n)
	for i, j := range batch {
		eligible[i], fellBack[i] = st.EligibleSites(policy, j)
	}

	cands := make([]candidate, 0, n)
	for len(remaining) > 0 {
		cands = cands[:0]
		for _, jobIdx := range remaining {
			j := batch[jobIdx]
			c := candidate{jobIdx: jobIdx, bestSite: -1,
				bestCT: math.Inf(1), secondCT: math.Inf(1), fellBack: fellBack[jobIdx]}
			for _, site := range eligible[jobIdx] {
				ct := work.CompletionTime(j, site)
				switch {
				case ct < c.bestCT:
					c.secondCT = c.bestCT
					c.bestCT = ct
					c.bestSite = site
				case ct < c.secondCT:
					c.secondCT = ct
				}
			}
			cands = append(cands, c)
		}
		winner := cands[pick(cands)]
		j := batch[winner.jobIdx]
		out = append(out, sched.Assignment{Job: j, Site: winner.bestSite, FellBack: winner.fellBack})
		// Dispatch on the working copy: the site is busy until completion.
		work.Ready[winner.bestSite] = winner.bestCT

		// Remove the winner from remaining (order-preserving for
		// deterministic tie behaviour).
		for k, idx := range remaining {
			if idx == winner.jobIdx {
				remaining = append(remaining[:k], remaining[k+1:]...)
				break
			}
		}
	}
	return out
}
