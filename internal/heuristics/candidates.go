package heuristics

import (
	"math"
	"math/bits"
	"sort"

	"trustgrid/internal/grid"
	"trustgrid/internal/sched"
	"trustgrid/internal/sched/kernel"
)

// This file holds the candidate data structures that replaced the
// incremental best-two rescans in greedyBatch (PR 9). Both structures
// reproduce the frozen full-recompute oracle in greedy_ref_test.go
// assignment-for-assignment, including every tie:
//
//   - Min-Min uses one sorted candidate bucket per site (bucketRun):
//     the global minimum completion time each round is the minimum
//     over sites of start[s] + headEtc[s], a branch-free scan of two
//     dense arrays kept current with O(1) amortized head advances. One
//     round costs O(m) instead of rescanning every (job, site) pair
//     whose best two contained the assigned site — the "pile-on" storm
//     that made large-m rounds O(n²·m) whenever jobs agree on the
//     fastest site, which proportional ETC columns guarantee they do.
//     (A site heap would make rounds O(log m), but every assignment
//     invalidates the head of ~every bucket holding the assigned job,
//     so heap churn measures slower than the flat scan up to m=1024.)
//   - Sufferage and Max-Min need per-job best/second values, so they
//     keep per-job lazy min-heaps keyed on completion time (lazyRun),
//     invalidated by per-site version stamps: a job does heap work only
//     when the site holding its best or second-best slot was assigned,
//     and then pays O(log |elig|) instead of an O(m) rescan.
//
// The bucket order invariant: within one site, candidate jobs are kept
// in ascending ETC order. The kernel contract (Snapshot.ETC[i*M+k] =
// Workload[i]/Speed[k], IEEE division) makes every site's column
// monotone in workload — x ≤ y implies x/s ≤ y/s for s > 0 — so one
// global sort of the batch by (workload, batch index) orders every
// bucket at once, and equal-ETC candidates form contiguous runs even
// where distinct workloads round to the same quotient.
type bucketRun struct {
	order    []int32 // batch indices sorted by (workload, index)
	elig     []*kernel.EligSet
	assigned []bool
	start    []float64 // per-site max(ready, now), bumped on assignment
	headEtc  []float64 // ETC of each site's head candidate (+Inf when empty)
	counts   []int32   // per-site bucket sizes, then per-site fill cursors
	off      []int32   // m+1 bucket offsets into ent
	ent      []int32   // concatenated per-site candidate lists
	head     []int32   // per-site first unassigned entry
	tied     []int32   // sites tied at the round's minimum CT
}

// advance moves site s's head past assigned entries and refreshes the
// cached head ETC (+Inf when the bucket is exhausted). Each bucket
// entry is skipped at most once over the whole batch, so the total
// advance cost is O(Σ|elig|).
func (b *bucketRun) advance(k *kernel.Snapshot, etcT []float64, s int32) {
	h, end := b.head[s], b.off[s+1]
	for h < end && b.assigned[b.ent[h]] {
		h++
	}
	b.head[s] = h
	if h == end {
		b.headEtc[s] = math.Inf(1)
		return
	}
	b.headEtc[s] = etcT[int(s)*k.N+int(b.ent[h])]
}

// minminBatch is the bucket-based Min-Min round loop. Each round: scan
// start[s]+headEtc[s] for the global minimum completion time ct*,
// collecting every site tied at ct*; scan the tied sites' equal-ETC
// head runs for the lowest batch index achieving ct*; and give that
// job the lowest tied site whose run contains it — exactly the
// oracle's "lowest batch index, then lowest site index" resolution.
func (b *bucketRun) minminBatch(batch []*grid.Job, st *sched.State, policy grid.Policy) []sched.Assignment {
	n := len(batch)
	out := make([]sched.Assignment, 0, n)
	if n == 0 {
		return out
	}
	k := st.Snapshot(batch)
	m := k.M
	etcT := k.ETCT()

	b.order = grow(b.order, n)
	b.assigned = growBool(b.assigned, n)
	b.start = growF64(b.start, m)
	b.headEtc = growF64(b.headEtc, m)
	b.counts = grow(b.counts, m)
	b.off = grow(b.off, m+1)
	b.head = grow(b.head, m)
	if b.elig == nil || cap(b.elig) < n {
		b.elig = make([]*kernel.EligSet, n)
	}
	elig := b.elig[:n]
	for s := 0; s < m; s++ {
		b.start[s] = k.Ready[s]
		if k.Now > b.start[s] {
			b.start[s] = k.Now
		}
		b.counts[s] = 0
	}
	total := 0
	for i := 0; i < n; i++ {
		b.order[i] = int32(i)
		b.assigned[i] = false
		e := k.Eligible(policy, i)
		elig[i] = e
		total += len(e.Sites)
		for _, s := range e.Sites {
			b.counts[s]++
		}
	}
	w := k.Workload
	ord := b.order[:n]
	sort.Slice(ord, func(a, c int) bool {
		x, y := ord[a], ord[c]
		return w[x] < w[y] || (w[x] == w[y] && x < y)
	})
	b.off[0] = 0
	for s := 0; s < m; s++ {
		b.off[s+1] = b.off[s] + b.counts[s]
		b.counts[s] = b.off[s] // reuse as per-site fill cursor
		b.head[s] = b.off[s]
	}
	b.ent = grow(b.ent, total)
	for _, i := range ord {
		// Word-packed iteration over the job's eligible sites: one
		// TrailingZeros per membership instead of one 8-byte Sites read.
		for wi, word := range elig[i].Bits {
			base := int32(wi << 6)
			for word != 0 {
				s := base + int32(bits.TrailingZeros64(word))
				word &= word - 1
				b.ent[b.counts[s]] = i
				b.counts[s]++
			}
		}
	}
	for s := int32(0); s < int32(m); s++ {
		b.advance(k, etcT, s)
	}

	for len(out) < n {
		// One dense scan for the global minimum completion time and
		// every site tied at it.
		ctStar := math.Inf(1)
		b.tied = b.tied[:0]
		for s := 0; s < m; s++ {
			ct := b.start[s] + b.headEtc[s]
			if ct > ctStar {
				continue
			}
			if ct < ctStar {
				ctStar = ct
				b.tied = b.tied[:0]
			}
			b.tied = append(b.tied, int32(s))
		}
		// Lowest batch index among the tied sites' equal-ETC head runs.
		win := int32(math.MaxInt32)
		for _, s := range b.tied {
			base := int(s) * k.N
			h, end := b.head[s], b.off[s+1]
			e0 := etcT[base+int(b.ent[h])]
			for p := h; p < end; p++ {
				j := b.ent[p]
				if b.assigned[j] {
					continue
				}
				if etcT[base+int(j)] != e0 {
					break
				}
				if j < win {
					win = j
				}
			}
		}
		// Lowest tied site whose run contains the winner = the winner's
		// own best site under the ascending strict-< scan.
		site := int32(-1)
		for _, s := range b.tied {
			if !elig[win].Has(int(s)) {
				continue
			}
			h := b.head[s]
			if etcT[int(s)*k.N+int(win)] != etcT[int(s)*k.N+int(b.ent[h])] {
				continue
			}
			if site < 0 || s < site {
				site = s
			}
		}
		out = append(out, sched.Assignment{Job: batch[win], Site: int(site), FellBack: elig[win].FellBack})
		b.assigned[win] = true
		// ct* = start + etc ≥ now, so the dispatched site's new start is
		// exactly ct*.
		b.start[site] = ctStar
		// Only buckets holding the winner at their head go stale; probe
		// exactly the winner's eligible sites.
		for _, s := range elig[win].Sites {
			if h := b.head[s]; h < b.off[s+1] && b.ent[h] == win {
				b.advance(k, etcT, int32(s))
			}
		}
	}
	return out
}

// jobEnt is one candidate site in a job's lazy heap: the completion
// time it was computed at, and the site's version stamp at that time.
// An entry is current exactly when its stamp matches the site's
// version; completion times only increase, so stale keys under-estimate
// and pop-until-valid yields the true minimum.
type jobEnt struct {
	ct   float64
	site int32
	ver  uint32
}

func entLess(a, b jobEnt) bool {
	return a.ct < b.ct || (a.ct == b.ct && a.site < b.site)
}

// lazyRun is the per-job candidate-heap state shared by Sufferage and
// Max-Min: bestCT/secondCT mirror the old greedyRun columns (the pick
// functions are unchanged), but a refresh costs O(log |elig|) heap work
// and happens only for jobs whose stamped best or second site was
// assigned since their last refresh.
type lazyRun struct {
	ready    []float64
	start    []float64 // max(ready, now) per site — the ct base
	elig     []*kernel.EligSet
	ent      []jobEnt // concatenated per-job heaps
	off      []int32  // n+1 offsets into ent
	siteVer  []uint32
	bestSite []int32
	bestCT   []float64
	secondCT []float64
	secSite  []int32
	bestVer  []uint32
	secVer   []uint32
	remain   []int
}

// ct is the completion time of job i on site under the current loads.
// The max(ready, now) base is maintained in g.start — it changes only
// when a site takes an assignment, while ct runs on every heap re-key,
// so hoisting the comparison out pays for itself during the O(Σ|elig|)
// initial build.
func (g *lazyRun) ct(k *kernel.Snapshot, i int, site int32) float64 {
	return g.start[site] + k.ETC[i*k.M+int(site)]
}

// refresh re-derives job i's best and second-best completion times from
// its heap: validate the top (re-keying stale entries in place), read
// the best, swap-pop it to expose and validate the runner-up, then sift
// the best back in. Stamps record the site versions the values were
// computed under.
func (g *lazyRun) refresh(k *kernel.Snapshot, i int) {
	h := g.ent[g.off[i]:g.off[i+1]]
	for {
		e := h[0]
		if g.siteVer[e.site] == e.ver {
			break
		}
		h[0].ct = g.ct(k, i, e.site)
		h[0].ver = g.siteVer[e.site]
		siftDown(h, 0)
	}
	best := h[0]
	g.bestSite[i], g.bestCT[i] = best.site, best.ct
	g.bestVer[i] = best.ver
	if len(h) == 1 {
		g.secondCT[i] = math.Inf(1)
		g.secSite[i] = -1
		return
	}
	last := len(h) - 1
	h[0], h[last] = h[last], h[0]
	sub := h[:last]
	siftDown(sub, 0)
	for {
		e := sub[0]
		if g.siteVer[e.site] == e.ver {
			break
		}
		sub[0].ct = g.ct(k, i, e.site)
		sub[0].ver = g.siteVer[e.site]
		siftDown(sub, 0)
	}
	g.secondCT[i] = sub[0].ct
	g.secSite[i] = sub[0].site
	g.secVer[i] = sub[0].ver
	siftUp(h, last)
}

func siftDown(h []jobEnt, i int) {
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < n && entLess(h[l], h[s]) {
			s = l
		}
		if r < n && entLess(h[r], h[s]) {
			s = r
		}
		if s == i {
			return
		}
		h[i], h[s] = h[s], h[i]
		i = s
	}
}

func siftUp(h []jobEnt, i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !entLess(h[i], h[p]) {
			return
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
}

// picker selects which position in remaining wins the current round.
// Every picker is a single pass with a strict comparison, so the
// deterministic tie rule is shared: among equal-valued candidates the
// earliest position in remaining wins, and remaining preserves batch
// submission order, so ties always resolve to the lowest batch index.
type picker func(bestCT, secondCT []float64, remaining []int) int

// pickSufferage chooses the position whose job has the maximum sufferage
// value (second-best CT minus best CT). Jobs with a single eligible site
// have infinite sufferage and are placed first, as in the original
// heuristic. Tie rule: strict > keeps the first (lowest batch index) of
// any equal-valued run, including among the +Inf singletons.
func pickSufferage(bestCT, secondCT []float64, remaining []int) int {
	best := 0
	bestVal := secondCT[remaining[0]] - bestCT[remaining[0]]
	for p := 1; p < len(remaining); p++ {
		i := remaining[p]
		if v := secondCT[i] - bestCT[i]; v > bestVal {
			best, bestVal = p, v
		}
	}
	return best
}

// pickMaxMin chooses the position whose job has the maximum earliest
// completion time. Tie rule: strict > keeps the first (lowest batch
// index) of any equal-valued run.
func pickMaxMin(bestCT, _ []float64, remaining []int) int {
	best := 0
	bestVal := bestCT[remaining[0]]
	for p := 1; p < len(remaining); p++ {
		if v := bestCT[remaining[p]]; v > bestVal {
			best, bestVal = p, v
		}
	}
	return best
}

// lazyBatch runs the shared Sufferage/Max-Min loop: build the per-job
// heaps once (O(Σ|elig|)), then each round refresh only the jobs whose
// stamped best or second site changed version, pick, assign, and bump
// the assigned site's version. Values — and therefore schedules — are
// bit-identical to the full-recompute oracle.
func (g *lazyRun) lazyBatch(batch []*grid.Job, st *sched.State, policy grid.Policy, pick picker) []sched.Assignment {
	n := len(batch)
	out := make([]sched.Assignment, 0, n)
	if n == 0 {
		return out
	}
	k := st.Snapshot(batch)
	m := k.M

	g.ready = growF64(g.ready, m)
	copy(g.ready, k.Ready)
	g.start = growF64(g.start, m)
	for s := 0; s < m; s++ {
		st := g.ready[s]
		if k.Now > st {
			st = k.Now
		}
		g.start[s] = st
	}
	g.siteVer = growU32(g.siteVer, m)
	for s := range g.siteVer[:m] {
		g.siteVer[s] = 0
	}
	if g.elig == nil || cap(g.elig) < n {
		g.elig = make([]*kernel.EligSet, n)
	}
	elig := g.elig[:n]
	g.off = grow(g.off, n+1)
	g.bestSite = grow(g.bestSite, n)
	g.secSite = grow(g.secSite, n)
	g.bestCT = growF64(g.bestCT, n)
	g.secondCT = growF64(g.secondCT, n)
	g.bestVer = growU32(g.bestVer, n)
	g.secVer = growU32(g.secVer, n)
	total := 0
	g.off[0] = 0
	for i := 0; i < n; i++ {
		e := k.Eligible(policy, i)
		elig[i] = e
		total += len(e.Sites)
		g.off[i+1] = int32(total)
	}
	if cap(g.ent) < total {
		g.ent = make([]jobEnt, total)
	}
	g.ent = g.ent[:total]
	for i := 0; i < n; i++ {
		h := g.ent[g.off[i]:g.off[i+1]]
		p := 0
		for wi, word := range elig[i].Bits {
			base := int32(wi << 6)
			for word != 0 {
				s := base + int32(bits.TrailingZeros64(word))
				word &= word - 1
				h[p] = jobEnt{ct: g.ct(k, i, s), site: s, ver: 0}
				p++
			}
		}
		for j := len(h)/2 - 1; j >= 0; j-- {
			siftDown(h, j)
		}
		g.refresh(k, i)
	}

	if cap(g.remain) < n {
		g.remain = make([]int, n)
	}
	remaining := g.remain[:n]
	for i := range remaining {
		remaining[i] = i
	}
	for len(remaining) > 0 {
		for _, i := range remaining {
			if g.siteVer[g.bestSite[i]] != g.bestVer[i] ||
				(g.secSite[i] >= 0 && g.siteVer[g.secSite[i]] != g.secVer[i]) {
				g.refresh(k, i)
			}
		}
		pos := pick(g.bestCT, g.secondCT, remaining)
		win := remaining[pos]
		site := g.bestSite[win]
		out = append(out, sched.Assignment{Job: batch[win], Site: int(site), FellBack: elig[win].FellBack})
		g.ready[site] = g.bestCT[win]
		if st := g.bestCT[win]; st >= k.Now {
			g.start[site] = st
		} else {
			g.start[site] = k.Now
		}
		g.siteVer[site]++
		remaining = append(remaining[:pos], remaining[pos+1:]...)
	}
	return out
}

func grow(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func growF64(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growU32(s []uint32, n int) []uint32 {
	if cap(s) < n {
		return make([]uint32, n)
	}
	return s[:n]
}

func growBool(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}
