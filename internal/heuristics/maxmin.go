package heuristics

import (
	"fmt"
	"math"

	"trustgrid/internal/grid"
	"trustgrid/internal/sched"
)

// MaxMin is the classic companion of Min-Min (Braun et al., the paper's
// ref [7]): each round, among every unscheduled job's earliest completion
// times, dispatch the job whose earliest completion time is *largest*.
// Placing long jobs first avoids the Min-Min pathology of stranding one
// giant job at the end of the schedule.
type MaxMin struct {
	Policy grid.Policy
}

// NewMaxMin builds a Max-Min scheduler under the given risk policy.
func NewMaxMin(p grid.Policy) *MaxMin { return &MaxMin{Policy: p} }

// Name implements sched.Scheduler.
func (m *MaxMin) Name() string { return fmt.Sprintf("Max-Min %s", m.Policy.Name()) }

// Schedule implements sched.Scheduler.
func (m *MaxMin) Schedule(batch []*grid.Job, st *sched.State) []sched.Assignment {
	return greedyBatch(batch, st, m.Policy, pickMaxMin)
}

// pickMaxMin chooses the candidate with the maximum earliest completion
// time.
func pickMaxMin(cands []candidate) int {
	best := 0
	for i := 1; i < len(cands); i++ {
		if cands[i].bestCT > cands[best].bestCT {
			best = i
		}
	}
	return best
}

// KPB (k-percent best) restricts each job to its k% fastest eligible
// sites by raw execution time and picks the earliest completion among
// them (Maheswaran et al.): a compromise between MET's speed greed and
// MCT's availability greed.
type KPB struct {
	Policy grid.Policy
	// Percent is k in (0, 100]. Zero means the classic 20%.
	Percent float64
}

// NewKPB builds a KPB scheduler under the given risk policy.
func NewKPB(p grid.Policy, percent float64) *KPB {
	return &KPB{Policy: p, Percent: percent}
}

// Name implements sched.Scheduler.
func (k *KPB) Name() string {
	return fmt.Sprintf("KPB(%.0f%%) %s", k.percent(), k.Policy.Name())
}

func (k *KPB) percent() float64 {
	if k.Percent <= 0 || k.Percent > 100 {
		return 20
	}
	return k.Percent
}

// Schedule implements sched.Scheduler.
func (k *KPB) Schedule(batch []*grid.Job, st *sched.State) []sched.Assignment {
	ready := append([]float64(nil), st.Ready...)
	work := sched.State{Now: st.Now, Sites: st.Sites, Ready: ready}
	out := make([]sched.Assignment, 0, len(batch))
	frac := k.percent() / 100
	for _, j := range batch {
		eligible, fellBack := st.EligibleSites(k.Policy, j)
		// Keep the ⌈k%⌉ fastest eligible sites by raw execution time.
		keep := int(math.Ceil(frac * float64(len(eligible))))
		if keep < 1 {
			keep = 1
		}
		subset := append([]int(nil), eligible...)
		// Selection sort of the first `keep` by ExecTime: subsets are tiny.
		for i := 0; i < keep; i++ {
			best := i
			for p := i + 1; p < len(subset); p++ {
				if st.Sites[subset[p]].ExecTime(j) < st.Sites[subset[best]].ExecTime(j) {
					best = p
				}
			}
			subset[i], subset[best] = subset[best], subset[i]
		}
		subset = subset[:keep]

		bestSite, bestCT := -1, math.Inf(1)
		for _, site := range subset {
			if ct := work.CompletionTime(j, site); ct < bestCT {
				bestSite, bestCT = site, ct
			}
		}
		work.Ready[bestSite] = bestCT
		out = append(out, sched.Assignment{Job: j, Site: bestSite, FellBack: fellBack})
	}
	return out
}
