package heuristics

import (
	"fmt"
	"math"

	"trustgrid/internal/grid"
	"trustgrid/internal/sched"
)

// MaxMin is the classic companion of Min-Min (Braun et al., the paper's
// ref [7]): each round, among every unscheduled job's earliest completion
// times, dispatch the job whose earliest completion time is *largest*.
// Placing long jobs first avoids the Min-Min pathology of stranding one
// giant job at the end of the schedule.
type MaxMin struct {
	Policy grid.Policy
	run    lazyRun
}

// NewMaxMin builds a Max-Min scheduler under the given risk policy.
func NewMaxMin(p grid.Policy) *MaxMin { return &MaxMin{Policy: p} }

// Name implements sched.Scheduler.
func (m *MaxMin) Name() string { return fmt.Sprintf("Max-Min %s", m.Policy.Name()) }

// Schedule implements sched.Scheduler.
func (m *MaxMin) Schedule(batch []*grid.Job, st *sched.State) []sched.Assignment {
	return m.run.lazyBatch(batch, st, m.Policy, pickMaxMin)
}

// KPB (k-percent best) restricts each job to its k% fastest eligible
// sites by raw execution time and picks the earliest completion among
// them (Maheswaran et al.): a compromise between MET's speed greed and
// MCT's availability greed.
type KPB struct {
	Policy grid.Policy
	// Percent is k in (0, 100]. Zero means the classic 20%.
	Percent float64
}

// NewKPB builds a KPB scheduler under the given risk policy.
func NewKPB(p grid.Policy, percent float64) *KPB {
	return &KPB{Policy: p, Percent: percent}
}

// Name implements sched.Scheduler.
func (k *KPB) Name() string {
	return fmt.Sprintf("KPB(%.0f%%) %s", k.percent(), k.Policy.Name())
}

func (k *KPB) percent() float64 {
	if k.Percent <= 0 || k.Percent > 100 {
		return 20
	}
	return k.Percent
}

// Schedule implements sched.Scheduler.
func (k *KPB) Schedule(batch []*grid.Job, st *sched.State) []sched.Assignment {
	kern := st.Snapshot(batch)
	ready := append([]float64(nil), kern.Ready...)
	out := make([]sched.Assignment, 0, len(batch))
	frac := k.percent() / 100
	subset := make([]int, kern.M)
	for i, j := range batch {
		elig := kern.Eligible(k.Policy, i)
		row := kern.ETC[i*kern.M : (i+1)*kern.M]
		// Keep the ⌈k%⌉ fastest eligible sites by raw execution time.
		keep := int(math.Ceil(frac * float64(len(elig.Sites))))
		if keep < 1 {
			keep = 1
		}
		subset = subset[:len(elig.Sites)]
		copy(subset, elig.Sites)
		// Selection sort of the first `keep` by ETC: subsets are tiny.
		for i := 0; i < keep; i++ {
			best := i
			for p := i + 1; p < len(subset); p++ {
				if row[subset[p]] < row[subset[best]] {
					best = p
				}
			}
			subset[i], subset[best] = subset[best], subset[i]
		}

		bestSite, bestCT := -1, math.Inf(1)
		for _, site := range subset[:keep] {
			start := ready[site]
			if kern.Now > start {
				start = kern.Now
			}
			if ct := start + row[site]; ct < bestCT {
				bestSite, bestCT = site, ct
			}
		}
		ready[bestSite] = bestCT
		out = append(out, sched.Assignment{Job: j, Site: bestSite, FellBack: elig.FellBack})
	}
	return out
}
