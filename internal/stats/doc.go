// Package stats provides the small statistical helpers used by the
// experiment harness: means, standard deviations, confidence intervals
// over replicated runs, and simple series utilities.
//
// DESIGN.md §1.1 inventory row: small sample/aggregation helpers (means, confidence intervals, percentiles).
package stats
