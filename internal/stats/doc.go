// Package stats provides the small statistical helpers used by the
// experiment harness: means, standard deviations, confidence intervals
// over replicated runs, and simple series utilities.
//
// Degenerate-input contract (every helper follows it):
//
//   - Aggregates that are undefined on an empty slice — Mean, Min, Max,
//     Median, Percentile — return NaN: an absent value must poison
//     downstream arithmetic loudly rather than masquerade as zero.
//   - Spread estimators — StdDev, CI95 — return 0 for n < 2: a single
//     observation is real data with no measured spread, and the ±0
//     half-width renders sensibly in reports at Reps = 1.
//   - Index selectors — ArgMin — return -1 for empty input.
//   - NaN elements in non-empty input propagate per IEEE-754 (order
//     statistics follow sort.Float64s, which places NaN first); callers
//     filter if they need different behavior.
//
// DESIGN.md §1.1 inventory row: small sample/aggregation helpers (means, confidence intervals, percentiles).
package stats
