package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean (NaN for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the sample standard deviation (0 for n < 2: one
// observation has no measured spread; see the package contract).
func StdDev(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// CI95 returns the half-width of an approximate 95% confidence interval
// for the mean (normal approximation; replication counts here are small
// so this is indicative, not inferential). 0 for n < 2, matching
// StdDev.
func CI95(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	return 1.96 * StdDev(xs) / math.Sqrt(float64(len(xs)))
}

// Min returns the minimum (NaN for empty input).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum (NaN for empty input).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Median returns the median (NaN for empty input).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Percentile returns the p-th percentile (p in [0, 100]) of xs using
// linear interpolation between order statistics (NaN for empty input).
// The service layer uses it for scheduling-latency p50/p99 reports.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return PercentileOfSorted(s, p)
}

// PercentileOfSorted is Percentile over an already ascending-sorted
// slice, for callers reading several percentiles from one sort.
func PercentileOfSorted(s []float64, p float64) float64 {
	if len(s) == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[lo] + frac*(s[lo+1]-s[lo])
}

// ArgMin returns the index of the smallest element (-1 for empty input).
func ArgMin(xs []float64) int {
	if len(xs) == 0 {
		return -1
	}
	best := 0
	for i, x := range xs {
		if x < xs[best] {
			best = i
		}
	}
	return best
}

// Sample accumulates replicated observations of one quantity.
type Sample struct {
	Values []float64
}

// Add appends an observation.
func (s *Sample) Add(v float64) { s.Values = append(s.Values, v) }

// Mean of the sample.
func (s *Sample) Mean() float64 { return Mean(s.Values) }

// CI95 half-width of the sample mean.
func (s *Sample) CI95() float64 { return CI95(s.Values) }

// String formats as "mean ± ci".
func (s *Sample) String() string {
	return fmt.Sprintf("%.4g ± %.2g", s.Mean(), s.CI95())
}

// HumanSeconds renders a duration in seconds with engineering-style
// grouping, e.g. "1.53e6 s (17.7 days)". The experiment tables use it so
// magnitudes are comparable to the paper's axes at a glance.
func HumanSeconds(sec float64) string {
	switch {
	case sec >= 36*3600:
		return fmt.Sprintf("%.3g s (%.1f days)", sec, sec/86400)
	case sec >= 3600:
		return fmt.Sprintf("%.3g s (%.1f h)", sec, sec/3600)
	default:
		return fmt.Sprintf("%.3g s", sec)
	}
}
