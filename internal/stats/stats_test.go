package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{[]float64{5}, 5},
		{[]float64{1, 2, 3}, 2},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.in); got != c.want {
			t.Errorf("Mean(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) must be NaN (package contract)")
	}
}

// TestDegenerateInputContract pins the package-level contract for every
// helper: empty aggregates are NaN, spread of n<2 is 0, empty index
// selection is -1, and NaN elements propagate without panicking.
func TestDegenerateInputContract(t *testing.T) {
	// Empty input.
	for name, got := range map[string]float64{
		"Mean":       Mean(nil),
		"Min":        Min(nil),
		"Max":        Max(nil),
		"Median":     Median(nil),
		"Percentile": Percentile(nil, 50),
	} {
		if !math.IsNaN(got) {
			t.Errorf("%s(nil) = %v, want NaN", name, got)
		}
	}
	if StdDev(nil) != 0 || CI95(nil) != 0 {
		t.Error("spread of empty input must be 0")
	}
	if ArgMin(nil) != -1 {
		t.Error("ArgMin(nil) must be -1")
	}

	// Single element: aggregates are the element, spread is 0.
	one := []float64{7.5}
	for name, got := range map[string]float64{
		"Mean":       Mean(one),
		"Min":        Min(one),
		"Max":        Max(one),
		"Median":     Median(one),
		"Percentile": Percentile(one, 99),
	} {
		if got != 7.5 {
			t.Errorf("%s([7.5]) = %v, want 7.5", name, got)
		}
	}
	if StdDev(one) != 0 || CI95(one) != 0 {
		t.Error("spread of a single observation must be 0")
	}
	if ArgMin(one) != 0 {
		t.Error("ArgMin of one element must be 0")
	}

	// NaN-bearing input: no panic, NaN propagates through the mean, and
	// the order statistics stay defined (sort places NaN first).
	withNaN := []float64{1, math.NaN(), 3}
	if !math.IsNaN(Mean(withNaN)) {
		t.Error("Mean with a NaN element must be NaN")
	}
	if !math.IsNaN(StdDev(withNaN)) {
		t.Error("StdDev with a NaN element must be NaN")
	}
	if got := Max(withNaN); got != 3 {
		t.Errorf("Max with NaN element = %v, want 3", got)
	}
	if got := Percentile(withNaN, 100); got != 3 {
		t.Errorf("P100 with NaN element = %v, want 3", got)
	}
	_ = Median(withNaN) // defined by sort order; must not panic
	_ = ArgMin(withNaN)
}

func TestStdDev(t *testing.T) {
	if StdDev(nil) != 0 || StdDev([]float64{3}) != 0 {
		t.Fatal("StdDev of <2 samples must be 0")
	}
	got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	want := math.Sqrt(32.0 / 7.0) // sample variance
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("StdDev = %v, want %v", got, want)
	}
}

func TestCI95(t *testing.T) {
	if CI95([]float64{1}) != 0 {
		t.Fatal("CI95 of one sample must be 0")
	}
	xs := []float64{10, 12, 14, 16}
	want := 1.96 * StdDev(xs) / 2 // sqrt(4) = 2
	if got := CI95(xs); math.Abs(got-want) > 1e-12 {
		t.Fatalf("CI95 = %v, want %v", got, want)
	}
}

func TestMinMaxMedian(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	if Min(xs) != 1 || Max(xs) != 5 {
		t.Fatal("Min/Max wrong")
	}
	if Median(xs) != 3 {
		t.Fatalf("odd median = %v", Median(xs))
	}
	if Median([]float64{1, 2, 3, 4}) != 2.5 {
		t.Fatal("even median wrong")
	}
	if !math.IsNaN(Min(nil)) || !math.IsNaN(Max(nil)) || !math.IsNaN(Median(nil)) {
		t.Fatal("empty inputs must be NaN")
	}
	// Median must not mutate its argument.
	if xs[0] != 3 || xs[4] != 5 {
		t.Fatal("Median mutated input")
	}
}

func TestArgMin(t *testing.T) {
	if ArgMin(nil) != -1 {
		t.Fatal("empty ArgMin must be -1")
	}
	if got := ArgMin([]float64{3, 1, 2, 1}); got != 1 {
		t.Fatalf("ArgMin = %d, want first minimum 1", got)
	}
}

func TestSample(t *testing.T) {
	var s Sample
	for _, v := range []float64{1, 2, 3} {
		s.Add(v)
	}
	if s.Mean() != 2 {
		t.Fatal("Sample mean wrong")
	}
	if !strings.Contains(s.String(), "±") {
		t.Fatalf("Sample string %q missing ±", s.String())
	}
}

func TestHumanSeconds(t *testing.T) {
	if got := HumanSeconds(100); !strings.HasSuffix(got, " s") || strings.Contains(got, "(") {
		t.Fatalf("short duration rendered %q", got)
	}
	if got := HumanSeconds(2 * 3600); !strings.Contains(got, "h)") {
		t.Fatalf("hours rendered %q", got)
	}
	if got := HumanSeconds(3 * 86400); !strings.Contains(got, "days") {
		t.Fatalf("days rendered %q", got)
	}
}

// Properties: Min <= Mean <= Max; StdDev >= 0; shifting by a constant
// shifts the mean and preserves the deviation.
func TestMomentsProperty(t *testing.T) {
	check := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e9 {
				xs = append(xs, v)
			}
		}
		if len(xs) < 2 {
			return true
		}
		m, lo, hi := Mean(xs), Min(xs), Max(xs)
		if m < lo-1e-6 || m > hi+1e-6 {
			return false
		}
		sd := StdDev(xs)
		if sd < 0 {
			return false
		}
		shifted := make([]float64, len(xs))
		for i, v := range xs {
			shifted[i] = v + 1000
		}
		if math.Abs(Mean(shifted)-(m+1000)) > 1e-6 {
			return false
		}
		return math.Abs(StdDev(shifted)-sd) < 1e-6
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
