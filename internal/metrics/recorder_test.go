package metrics

import (
	"sync"
	"testing"
)

// TestRecorderConcurrentObservers is the -race gate for the sharded
// daemon's latency series: N shard goroutines hammer one Recorder while
// scrapers read summaries concurrently. Before Recorder, the latency
// window was single-writer by accident of the server's coarse lock —
// this test exists so that assumption can never silently come back.
func TestRecorderConcurrentObservers(t *testing.T) {
	const (
		observers = 8
		perObs    = 5000
	)
	r := NewRecorder(0)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Concurrent scrapers: results are only read for data-race coverage
	// and basic sanity; the authoritative check is the final count.
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := r.Summary()
				if s.Count < 0 || s.P99 < s.P50 {
					t.Errorf("inconsistent summary snapshot: %+v", s)
				}
				_ = r.Count()
			}
		}()
	}
	var obsWG sync.WaitGroup
	for o := 0; o < observers; o++ {
		obsWG.Add(1)
		go func(o int) {
			defer obsWG.Done()
			for i := 0; i < perObs; i++ {
				r.Observe(float64(o*perObs + i))
			}
		}(o)
	}
	obsWG.Wait()
	close(stop)
	wg.Wait()

	if got := r.Count(); got != observers*perObs {
		t.Fatalf("lost observations under concurrency: count = %d, want %d", got, observers*perObs)
	}
	s := r.Summary()
	if s.Count != observers*perObs {
		t.Fatalf("summary count = %d, want %d", s.Count, observers*perObs)
	}
	if s.Max >= float64(observers*perObs) || s.Max < 0 {
		t.Fatalf("max %v outside observed range", s.Max)
	}
	if s.P50 > s.P90 || s.P90 > s.P99 || s.P99 > s.Max {
		t.Fatalf("percentiles not monotone: %+v", s)
	}
}

// TestRecorderWindowTrim pins the retention policy: at the bound the
// oldest half is dropped, lifetime count keeps climbing, and the
// percentiles reflect only retained (recent) samples.
func TestRecorderWindowTrim(t *testing.T) {
	r := NewRecorder(8)
	for i := 1; i <= 8; i++ {
		r.Observe(float64(i))
	}
	// 9th observation trims to the newest half {5..8} then appends 9.
	r.Observe(9)
	s := r.Summary()
	if s.Count != 9 {
		t.Fatalf("count = %d, want 9", s.Count)
	}
	if s.Max != 9 {
		t.Fatalf("max = %v, want 9", s.Max)
	}
	// Samples 1..4 were dropped: the median of {5,6,7,8,9} is 7, far
	// above the full-history median of 5.
	if s.P50 < 6 || s.P50 > 8 {
		t.Fatalf("p50 = %v, want median of the retained half", s.P50)
	}
}

func TestRecorderEmptyAndDefaults(t *testing.T) {
	r := NewRecorder(0)
	if r.max != DefaultRecorderWindow {
		t.Fatalf("default window = %d, want %d", r.max, DefaultRecorderWindow)
	}
	s := r.Summary()
	if s != (WindowSummary{}) {
		t.Fatalf("empty recorder summary = %+v, want zero", s)
	}
	r.Observe(3)
	s = r.Summary()
	if s.Count != 1 || s.P50 != 3 || s.P99 != 3 || s.Max != 3 {
		t.Fatalf("single-sample summary = %+v", s)
	}
}

// TestRecorderSmallWindows pins the window bound at the degenerate
// sizes where the drop-half arithmetic is easiest to get wrong: before
// the fix, a window of 1 kept its single sample on trim and sat at 2
// retained samples forever, violating the recorder's only invariant.
func TestRecorderSmallWindows(t *testing.T) {
	for _, window := range []int{1, 2, 3} {
		r := NewRecorder(window)
		for i := 1; i <= 10*window; i++ {
			r.Observe(float64(i))
			if got := len(r.samples); got > window {
				t.Fatalf("window %d: %d samples retained after %d observations",
					window, got, i)
			}
		}
		s := r.Summary()
		if s.Count != int64(10*window) {
			t.Fatalf("window %d: lifetime count = %d, want %d", window, s.Count, 10*window)
		}
		// The newest sample always survives the trim-then-append.
		if s.Max != float64(10*window) {
			t.Fatalf("window %d: max = %v, want %v", window, s.Max, float64(10*window))
		}
	}
}
