package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"trustgrid/internal/rng"
)

func TestJobRecordValidate(t *testing.T) {
	good := JobRecord{ID: 1, Arrival: 0, Start: 1, Completion: 2, Site: 0}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []JobRecord{
		{ID: 1, Arrival: 5, Start: 1, Completion: 9, Site: 0},
		{ID: 1, Arrival: 0, Start: 5, Completion: 4, Site: 0},
		{ID: 1, Arrival: 0, Start: 1, Completion: 2, Site: -1},
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("record %d should be invalid", i)
		}
	}
}

func TestComputeSingleJob(t *testing.T) {
	recs := []JobRecord{{ID: 0, Arrival: 0, Start: 10, Completion: 20, Site: 0}}
	s, err := Compute(recs, []float64{10})
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan != 20 || s.AvgResponse != 20 || s.AvgService != 10 {
		t.Fatalf("summary: %+v", s)
	}
	if s.Slowdown != 2 {
		t.Fatalf("slowdown %v, want 2", s.Slowdown)
	}
	if s.SiteUtilization[0] != 0.5 {
		t.Fatalf("utilization %v, want 0.5", s.SiteUtilization[0])
	}
}

func TestComputeUtilizationOverflowRejected(t *testing.T) {
	recs := []JobRecord{{ID: 0, Arrival: 0, Start: 0, Completion: 10, Site: 0}}
	if _, err := Compute(recs, []float64{20}); err == nil {
		t.Fatal("busy > makespan must be rejected")
	}
}

func TestComputeFloatTolerance(t *testing.T) {
	// Busy time equal to makespan within float error must pass and clamp.
	recs := []JobRecord{{ID: 0, Arrival: 0, Start: 0, Completion: 10, Site: 0}}
	s, err := Compute(recs, []float64{10 + 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if s.SiteUtilization[0] > 1 {
		t.Fatalf("utilization %v must clamp to 1", s.SiteUtilization[0])
	}
}

func TestComputeFallbacksCounted(t *testing.T) {
	recs := []JobRecord{
		{ID: 0, Arrival: 0, Start: 0, Completion: 1, Site: 0, FellBack: true},
		{ID: 1, Arrival: 0, Start: 1, Completion: 2, Site: 0},
	}
	s, err := Compute(recs, []float64{2})
	if err != nil {
		t.Fatal(err)
	}
	if s.Fallbacks != 1 {
		t.Fatalf("fallbacks %d, want 1", s.Fallbacks)
	}
}

// Property: for arbitrary consistent records, the metric identities hold:
// slowdown >= 1, NFail <= NRisk, 0 <= utilization <= 1, makespan >= every
// completion.
func TestComputeIdentitiesProperty(t *testing.T) {
	r := rng.New(21)
	check := func(n uint8) bool {
		count := int(n%30) + 1
		recs := make([]JobRecord, count)
		busy := []float64{0, 0, 0}
		var maxCompletion float64
		for i := range recs {
			arrival := r.Float64() * 100
			start := arrival + r.Float64()*50
			service := 1 + r.Float64()*20
			completion := start + service
			site := r.Intn(3)
			risk := r.Bool(0.5)
			recs[i] = JobRecord{
				ID: i, Arrival: arrival, Start: start, Completion: completion,
				Site: site, TookRisk: risk, Failed: risk && r.Bool(0.5),
			}
			busy[site] += service
			if completion > maxCompletion {
				maxCompletion = completion
			}
		}
		// Scale busy down to stay within makespan (sites overlap jobs in
		// this synthetic construction).
		for i := range busy {
			if busy[i] > maxCompletion {
				busy[i] = maxCompletion
			}
		}
		s, err := Compute(recs, busy)
		if err != nil {
			return false
		}
		if s.Slowdown < 1-1e-9 || math.IsNaN(s.Slowdown) {
			return false
		}
		if s.NFail > s.NRisk {
			return false
		}
		for _, u := range s.SiteUtilization {
			if u < 0 || u > 1 {
				return false
			}
		}
		return s.Makespan == maxCompletion
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
