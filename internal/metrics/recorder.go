package metrics

import (
	"sort"
	"sync"

	"trustgrid/internal/stats"
)

// Recorder is a bounded-window percentile recorder, safe for
// concurrent use. It replaces the single-writer sample window the
// server's latency tracker grew organically: that window was only safe
// because one coarse mutex in the server happened to guard every
// access, a latent assumption that stops holding the moment N engine
// shards (or any other concurrent producer) feed the same series.
// Recorder owns its lock, so every series — global, per-tenant,
// per-shard — is individually safe no matter which goroutine observes
// into it. TestRecorderConcurrentObservers hammers it under -race.
//
// Retention: when the window reaches its bound, the oldest half is
// dropped in one copy, so percentiles stay dominated by recent
// observations without per-sample bookkeeping.
type Recorder struct {
	mu      sync.Mutex
	samples []float64
	max     int
	count   int64 // observations ever recorded, beyond the window
}

// DefaultRecorderWindow bounds a Recorder built with window <= 0.
const DefaultRecorderWindow = 1 << 16

// NewRecorder builds a recorder retaining at most window samples.
func NewRecorder(window int) *Recorder {
	if window <= 0 {
		window = DefaultRecorderWindow
	}
	return &Recorder{max: window}
}

// Observe records one sample.
func (r *Recorder) Observe(v float64) {
	r.mu.Lock()
	if len(r.samples) >= r.max {
		// Drop the oldest ⌈half⌉ so the append below lands back inside
		// the bound even at max=1 (keeping ⌊half⌋ of a 1-element window
		// would hold the window at 2 forever).
		r.samples = append(r.samples[:0], r.samples[(len(r.samples)+1)/2:]...)
	}
	r.samples = append(r.samples, v)
	r.count++
	r.mu.Unlock()
}

// Count returns the number of observations ever recorded.
func (r *Recorder) Count() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.count
}

// WindowSummary are a Recorder's percentile statistics over its
// retained window. Count is lifetime observations, not window size.
type WindowSummary struct {
	Count int64
	P50   float64
	P90   float64
	P99   float64
	Max   float64
}

// Summary computes the window percentiles. The window is copied under
// the lock and sorted outside it, so a scrape's O(n log n) never blocks
// an observer.
func (r *Recorder) Summary() WindowSummary {
	r.mu.Lock()
	count := r.count
	sorted := append([]float64(nil), r.samples...)
	r.mu.Unlock()
	if len(sorted) == 0 {
		return WindowSummary{Count: count}
	}
	sort.Float64s(sorted)
	return WindowSummary{
		Count: count,
		P50:   stats.PercentileOfSorted(sorted, 50),
		P90:   stats.PercentileOfSorted(sorted, 90),
		P99:   stats.PercentileOfSorted(sorted, 99),
		Max:   sorted[len(sorted)-1],
	}
}
