// Package metrics computes the paper's performance metrics (§4.1):
// makespan, average response time, slowdown ratio (Eq. 3), number of
// risk-taking jobs N_risk, number of failed jobs N_fail, and per-site
// utilization.
//
// DESIGN.md §1.1 inventory row: §4.1 metrics: makespan, response, slowdown, N_risk, N_fail, utilization.
package metrics
