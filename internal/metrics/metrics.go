package metrics

import (
	"fmt"
	"math"
)

// JobRecord captures one job's lifecycle through the simulator. Times are
// absolute simulation seconds. Start and Completion refer to the final,
// successful execution attempt; time lost to failed attempts shows up as
// waiting (response − service), matching the paper's accounting where a
// failed job "restarts from the beginning" elsewhere.
type JobRecord struct {
	ID int
	// Tenant is the owning principal ("" on single-tenant runs); per-job
	// accounting can be grouped by it downstream.
	Tenant     string
	Arrival    float64
	Start      float64
	Completion float64
	Site       int
	// TookRisk is true if any attempt ran on a site with SL < SD.
	TookRisk bool
	// Failed is true if the job failed at least once and was rescheduled.
	Failed bool
	// FellBack is true if the job was ever dispatched via the
	// no-eligible-site fallback.
	FellBack bool
	// Interrupted is true if a site crash cut at least one of the job's
	// execution attempts short (dynamic grids only).
	Interrupted bool
	// Deadline is the job's declared completion deadline (0 = none), and
	// MissedDeadline is true when the final completion overran it. The
	// engine records misses; nothing is dropped.
	Deadline       float64
	MissedDeadline bool
}

// Validate checks internal consistency of a record.
func (r JobRecord) Validate() error {
	switch {
	case r.Start < r.Arrival:
		return fmt.Errorf("metrics: job %d starts (%v) before arrival (%v)", r.ID, r.Start, r.Arrival)
	case r.Completion < r.Start:
		return fmt.Errorf("metrics: job %d completes (%v) before start (%v)", r.ID, r.Completion, r.Start)
	case r.Site < 0:
		return fmt.Errorf("metrics: job %d has invalid site %d", r.ID, r.Site)
	}
	return nil
}

// Summary aggregates a completed run.
type Summary struct {
	Jobs int
	// Makespan is max completion time over all jobs (§4.1).
	Makespan float64
	// AvgResponse is Σ(cᵢ−aᵢ)/N: completion minus arrival.
	AvgResponse float64
	// AvgService is Σ(cᵢ−bᵢ)/N: completion minus start of the successful
	// attempt. The paper calls this the "average waiting time" in its
	// slowdown definition (Eq. 3); it is the denominator of the ratio.
	AvgService float64
	// Slowdown is AvgResponse / AvgService (Eq. 3): the average
	// contention a job experiences. >= 1 by construction.
	Slowdown float64
	// NRisk counts jobs that ran on a site with SL < SD at least once.
	NRisk int
	// NFail counts jobs that failed and were rescheduled. NFail <= NRisk.
	NFail int
	// Fallbacks counts jobs dispatched via the no-eligible-site fallback.
	Fallbacks int
	// NInterrupted counts jobs that lost at least one execution attempt
	// to a site crash (zero on static platforms).
	NInterrupted int
	// NDeadlineMiss counts jobs that completed after their declared
	// deadline (jobs without a deadline never count).
	NDeadlineMiss int
	// SiteUtilization[i] is busy_i / makespan: the fraction of the run
	// during which site i processed user jobs (including time wasted by
	// failed attempts, which did occupy the site).
	SiteUtilization []float64
	// MeanUtilization averages SiteUtilization.
	MeanUtilization float64
	// IdleSites counts sites with zero utilization.
	IdleSites int
}

// Accumulator builds a Summary incrementally, one completed record at
// a time, in exactly the order Compute accumulates over a record slice
// — so a long-running online engine that discards records produces a
// summary bit-identical to a batch run's. Compute itself is built on
// it, which is what keeps the two paths from drifting apart.
type Accumulator struct {
	jobs                                  int
	makespan, respSum, servSum            float64
	nrisk, nfail, fallbacks, ninterrupted int
	ndeadline                             int
}

// Add folds one completed job in.
func (a *Accumulator) Add(r JobRecord) {
	a.jobs++
	if r.Completion > a.makespan {
		a.makespan = r.Completion
	}
	a.respSum += r.Completion - r.Arrival
	a.servSum += r.Completion - r.Start
	if r.TookRisk {
		a.nrisk++
	}
	if r.Failed {
		a.nfail++
	}
	if r.FellBack {
		a.fallbacks++
	}
	if r.Interrupted {
		a.ninterrupted++
	}
	if r.MissedDeadline {
		a.ndeadline++
	}
}

// AccumulatorState is the serializable form of an Accumulator, used by
// the engine snapshot so a recovered service's incremental summary
// continues from exactly where the crashed run stood.
type AccumulatorState struct {
	Jobs         int     `json:"jobs"`
	Makespan     float64 `json:"makespan"`
	RespSum      float64 `json:"resp_sum"`
	ServSum      float64 `json:"serv_sum"`
	NRisk        int     `json:"nrisk"`
	NFail        int     `json:"nfail"`
	Fallbacks    int     `json:"fallbacks"`
	NInterrupted int     `json:"ninterrupted"`
	// NDeadlineMiss is omitempty so pre-DAG snapshots and their byte
	// layouts are unchanged when no job carried a deadline.
	NDeadlineMiss int `json:"ndeadline_miss,omitempty"`
}

// State captures the accumulator.
func (a *Accumulator) State() AccumulatorState {
	return AccumulatorState{
		Jobs: a.jobs, Makespan: a.makespan,
		RespSum: a.respSum, ServSum: a.servSum,
		NRisk: a.nrisk, NFail: a.nfail,
		Fallbacks: a.fallbacks, NInterrupted: a.ninterrupted,
		NDeadlineMiss: a.ndeadline,
	}
}

// Merge folds another accumulator's state in: sums and counts add,
// makespan is the maximum. Partitioned runs (one accumulator per engine
// shard) merge read-side into the global summary this way; merging the
// per-shard states of a partitioned job set is exactly accumulating the
// union, because Add is a per-record fold with no cross-record terms.
func (a *Accumulator) Merge(s AccumulatorState) {
	a.jobs += s.Jobs
	if s.Makespan > a.makespan {
		a.makespan = s.Makespan
	}
	a.respSum += s.RespSum
	a.servSum += s.ServSum
	a.nrisk += s.NRisk
	a.nfail += s.NFail
	a.fallbacks += s.Fallbacks
	a.ninterrupted += s.NInterrupted
	a.ndeadline += s.NDeadlineMiss
}

// SetState restores a captured accumulator.
func (a *Accumulator) SetState(s AccumulatorState) {
	a.jobs, a.makespan = s.Jobs, s.Makespan
	a.respSum, a.servSum = s.RespSum, s.ServSum
	a.nrisk, a.nfail = s.NRisk, s.NFail
	a.fallbacks, a.ninterrupted = s.Fallbacks, s.NInterrupted
	a.ndeadline = s.NDeadlineMiss
}

// Summarize renders the summary given per-site busy time. Utilization
// above 1 is silently capped; Compute is the validating variant.
func (a *Accumulator) Summarize(busy []float64) Summary {
	s := Summary{
		Jobs:            a.jobs,
		Makespan:        a.makespan,
		NRisk:           a.nrisk,
		NFail:           a.nfail,
		Fallbacks:       a.fallbacks,
		NInterrupted:    a.ninterrupted,
		NDeadlineMiss:   a.ndeadline,
		SiteUtilization: make([]float64, len(busy)),
	}
	if a.jobs > 0 {
		n := float64(a.jobs)
		s.AvgResponse = a.respSum / n
		s.AvgService = a.servSum / n
		if s.AvgService > 0 {
			s.Slowdown = s.AvgResponse / s.AvgService
		} else {
			s.Slowdown = math.NaN()
		}
	}
	var utilSum float64
	for i, b := range busy {
		u := 0.0
		if s.Makespan > 0 {
			u = b / s.Makespan
		}
		if u > 1 {
			u = 1
		}
		s.SiteUtilization[i] = u
		utilSum += u
		if b == 0 {
			s.IdleSites++
		}
	}
	if len(busy) > 0 {
		s.MeanUtilization = utilSum / float64(len(busy))
	}
	return s
}

// Compute builds a Summary from job records and per-site busy time.
// busy[i] is the total occupied time of site i (successful plus wasted
// attempts). It returns an error on inconsistent records.
func Compute(records []JobRecord, busy []float64) (Summary, error) {
	if len(records) == 0 {
		return Summary{SiteUtilization: make([]float64, len(busy))}, nil
	}
	var acc Accumulator
	for _, r := range records {
		if err := r.Validate(); err != nil {
			return Summary{}, err
		}
		acc.Add(r)
	}
	if acc.nfail > acc.nrisk {
		return Summary{}, fmt.Errorf("metrics: NFail %d > NRisk %d violates the failure model", acc.nfail, acc.nrisk)
	}
	for i, b := range busy {
		if acc.makespan > 0 && b/acc.makespan > 1+1e-9 {
			return Summary{}, fmt.Errorf("metrics: site %d utilization %v > 1", i, b/acc.makespan)
		}
	}
	return acc.Summarize(busy), nil
}
