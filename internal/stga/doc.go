// Package stga implements the paper's contribution: the Space-Time
// Genetic Algorithm (§3). The STGA evolves job→site assignments not only
// over the solution space ("space") but also over previous scheduling
// results ("time"): a history lookup table stores the inputs and best
// schedules of earlier batches, and entries similar to the current batch
// (Eq. 2) seed the initial population, so only a few generations are
// needed to reach high-quality solutions.
//
// DESIGN.md §1.1 inventory row: the paper's contribution: Space-Time GA with the Eq. 2 similarity-indexed history table.
package stga
