package stga

import (
	"testing"
	"testing/quick"

	"trustgrid/internal/ga"
	"trustgrid/internal/grid"
	"trustgrid/internal/rng"
	"trustgrid/internal/sched"
)

// buildEntry constructs a history entry for a batch on the given sites.
func buildEntry(batch []*grid.Job, sites []*grid.Site, best ga.Chromosome) *Entry {
	st := &sched.State{Sites: sites, Ready: make([]float64, len(sites))}
	ready, etc, sd := batchInputs(batch, st)
	return &Entry{Ready: ready, ETC: etc, SD: sd, Best: best}
}

func TestAdaptSeedExactRecurrence(t *testing.T) {
	sites := testSites()
	// A stored batch and a new batch with the SAME specs but permuted
	// positions: rank matching must recover the original assignment
	// per spec.
	stored := []*grid.Job{
		{ID: 0, Workload: 100, Nodes: 1, SecurityDemand: 0.6},
		{ID: 1, Workload: 200, Nodes: 1, SecurityDemand: 0.7},
		{ID: 2, Workload: 300, Nodes: 1, SecurityDemand: 0.8},
	}
	best := ga.Chromosome{2, 1, 0} // 100→site2, 200→site1, 300→site0
	e := buildEntry(stored, sites, best)

	newBatch := []*grid.Job{
		{ID: 10, Workload: 300, Nodes: 1, SecurityDemand: 0.8}, // was gene 2
		{ID: 11, Workload: 100, Nodes: 1, SecurityDemand: 0.6}, // was gene 0
		{ID: 12, Workload: 200, Nodes: 1, SecurityDemand: 0.7}, // was gene 1
	}
	st := &sched.State{Sites: sites, Ready: make([]float64, len(sites))}
	_, etc, sd := batchInputs(newBatch, st)
	got := adaptSeed(e, etc, sd, len(sites), len(newBatch))
	want := ga.Chromosome{0, 2, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("adaptSeed = %v, want %v", got, want)
		}
	}
}

func TestAdaptSeedLengthMismatch(t *testing.T) {
	sites := testSites()
	stored := testBatch(10, 1)
	best := make(ga.Chromosome, 10)
	for i := range best {
		best[i] = i % len(sites)
	}
	e := buildEntry(stored, sites, best)

	for _, n := range []int{1, 5, 25} {
		newBatch := testBatch(n, 2)
		st := &sched.State{Sites: sites, Ready: make([]float64, len(sites))}
		_, etc, sd := batchInputs(newBatch, st)
		got := adaptSeed(e, etc, sd, len(sites), n)
		if len(got) != n {
			t.Fatalf("adapted length %d, want %d", len(got), n)
		}
		for _, g := range got {
			if g < 0 || g >= len(sites) {
				t.Fatalf("gene %d out of range", g)
			}
		}
	}
}

func TestAdaptSeedEmptyEntry(t *testing.T) {
	e := &Entry{Best: ga.Chromosome{}}
	got := adaptSeed(e, []float64{1, 2, 3}, []float64{0.7}, 3, 1)
	if len(got) != 1 {
		t.Fatal("empty entry must still produce a chromosome")
	}
}

func TestRankOrderSorts(t *testing.T) {
	// 3 jobs × 2 sites; first-column ETCs 30, 10, 20.
	etc := []float64{30, 3, 10, 1, 20, 2}
	sd := []float64{0.7, 0.7, 0.7}
	order := rankOrder(etc, sd, 2, 3)
	want := []int{1, 2, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("rankOrder = %v, want %v", order, want)
		}
	}
}

func TestRankOrderTiesBrokenBySD(t *testing.T) {
	etc := []float64{10, 1, 10, 1}
	sd := []float64{0.9, 0.6}
	order := rankOrder(etc, sd, 2, 2)
	if order[0] != 1 || order[1] != 0 {
		t.Fatalf("SD tie-break failed: %v", order)
	}
}

// Property: adaptation always yields a chromosome of the right length
// whose genes come from the stored chromosome's value set.
func TestAdaptSeedProperty(t *testing.T) {
	sites := testSites()
	r := rng.New(31)
	check := func(a, b uint8) bool {
		storedN := int(a%20) + 1
		newN := int(b%20) + 1
		stored := testBatch(storedN, uint64(a)+100)
		best := make(ga.Chromosome, storedN)
		values := map[int]bool{}
		for i := range best {
			best[i] = r.Intn(len(sites))
			values[best[i]] = true
		}
		e := buildEntry(stored, sites, best)
		newBatch := testBatch(newN, uint64(b)+500)
		st := &sched.State{Sites: sites, Ready: make([]float64, len(sites))}
		_, etc, sd := batchInputs(newBatch, st)
		got := adaptSeed(e, etc, sd, len(sites), newN)
		if len(got) != newN {
			return false
		}
		for _, g := range got {
			if !values[g] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestWarmStartOnRecurrentBatches drives the full scheduler over a
// recurring batch sequence and verifies that history hits actually
// lower the generation-0 fitness relative to the cold-start GA.
func TestWarmStartOnRecurrentBatches(t *testing.T) {
	sites := testSites()
	runOne := func(cold bool) float64 {
		cfg := fastConfig()
		cfg.SeedHeuristics = false
		cfg.DisableHistory = cold
		cfg.RecordTrajectories = true
		s := New(cfg, rng.New(17))
		// The same batch specification recurs 8 times (temporal
		// locality); ready times drift as the sites accumulate work.
		st := freshState(sites)
		for round := 0; round < 8; round++ {
			batch := testBatch(20, 99) // identical specs each round
			as := s.Schedule(batch, st)
			for _, a := range as {
				st.Ready[a.Site] += sites[a.Site].ExecTime(a.Job)
			}
		}
		// Mean generation-0 fitness over the later rounds (history warm).
		sum := 0.0
		n := 0
		for _, tr := range s.AllTrajectories[2:] {
			sum += tr[0] / tr[len(tr)-1]
			n++
		}
		return sum / float64(n)
	}
	warm := runOne(false)
	cold := runOne(true)
	if warm > cold*1.02 {
		t.Fatalf("warm gen-0 (%v) should not be worse than cold (%v) on recurrent batches", warm, cold)
	}
}
