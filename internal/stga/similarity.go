package stga

import "math"

// SimilarityEq2 is the paper's Eq. 2 exactly as printed:
//
//	Similarity(a,b) = 1 − Σ|aᵢ−bᵢ| / max{max aᵢ, max bᵢ}
//
// Note the denominator is a single maximal element, not a sum, so for
// long vectors the value easily goes negative; see Similarity for the
// normalized variant the scheduler uses by default (DESIGN.md §2.3).
// Vectors of different lengths are compared over the common prefix with
// a length-ratio penalty.
func SimilarityEq2(a, b []float64) float64 {
	return similarity(a, b, false)
}

// Similarity is the length-normalized variant:
//
//	Similarity(a,b) = 1 − (1/k)·Σ|aᵢ−bᵢ| / max{max aᵢ, max bᵢ}
//
// It is 1 for identical vectors, stays in (−∞, 1] but in practice within
// [0,1] whenever the element-wise differences are bounded by the max, and
// makes the paper's 0.8 lookup threshold attainable for realistically
// similar batches.
func Similarity(a, b []float64) float64 {
	return similarity(a, b, true)
}

func similarity(a, b []float64, normalize bool) float64 {
	return similarityPremax(a, b, maxElemOf(a), maxElemOf(b), normalize)
}

// maxElemOf returns the maximal element of v under the exact comparison
// the similarity scan historically used: strict >, starting from zero
// (so all-negative vectors yield 0, and NaNs never win).
func maxElemOf(v []float64) float64 {
	m := 0.0
	for _, x := range v {
		if x > m {
			m = x
		}
	}
	return m
}

// similarityPremax is similarity with both vectors' maximal elements
// precomputed. The maxima are scan-invariant, so the history table
// caches each entry's at insert time and computes the query's once per
// lookup; the per-entry hot loop then reduces to the branchless |aᵢ−bᵢ|
// accumulation (the data-dependent max-tracking branches used to cost
// as much as the arithmetic). Bit-identical to the fused scan: the
// difference sum accumulates in the same order and the max is
// order-independent under strict >.
func similarityPremax(a, b []float64, maxA, maxB float64, normalize bool) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	k := len(a)
	if len(b) < k {
		k = len(b)
	}
	var sumDiff float64
	for i := 0; i < k; i++ {
		d := a[i] - b[i]
		if d < 0 {
			d = -d
		}
		sumDiff += d
	}
	maxElem := maxA
	if maxB > maxElem {
		maxElem = maxB
	}
	var sim float64
	switch {
	case maxElem == 0:
		// Both vectors all-zero over the prefix: identical.
		sim = 1
	case normalize:
		sim = 1 - sumDiff/(float64(k)*maxElem)
	default:
		sim = 1 - sumDiff/maxElem
	}
	// Length mismatch penalty: scale by |common| / |longest|.
	longest := len(a)
	if len(b) > longest {
		longest = len(b)
	}
	if longest != k {
		sim *= float64(k) / float64(longest)
	}
	if math.IsNaN(sim) {
		return 0
	}
	return sim
}
