package stga

import (
	"testing"

	"trustgrid/internal/ga"
	"trustgrid/internal/grid"
	"trustgrid/internal/rng"
	"trustgrid/internal/sched"
)

// randomFitnessInstance builds a random (base, etc) problem of the given
// shape plus the two evaluators under test.
func randomFitnessInstance(r *rng.Stream, n, m int) (inc *makespanInc, full ga.Fitness) {
	base := make([]float64, m)
	etc := make([]float64, n*m)
	for i := range base {
		base[i] = r.Float64() * 1e4
	}
	for i := range etc {
		// Skewed magnitudes so float addition order genuinely matters:
		// any deviation from the full decode's operation sequence would
		// show up as a ULP-level mismatch.
		etc[i] = r.Float64() * 1e3 * float64(1+r.Intn(1000))
	}
	return newMakespanInc(base, etc, n, m), makespanFitness(m, base, etc, 0)
}

// TestDeltaFitnessMatchesFullDecode is the fuzz-style exactness gate:
// over random problem shapes and long random edit histories (gene
// mutations, range swaps between individuals, state copies), the delta
// evaluator must return the bit-identical float64 of the full decode at
// every step. No tolerance — equality is ==.
func TestDeltaFitnessMatchesFullDecode(t *testing.T) {
	r := rng.New(20260729)
	for trial := 0; trial < 300; trial++ {
		n := 1 + r.Intn(64)
		m := 1 + r.Intn(24)
		inc, full := randomFitnessInstance(r, n, m)

		// Two individuals so SwapRange has a partner.
		a := make(ga.Chromosome, n)
		b := make(ga.Chromosome, n)
		for i := range a {
			a[i] = r.Intn(m)
			b[i] = r.Intn(m)
		}
		sa, sb := inc.NewState(), inc.NewState()
		inc.Reset(sa, a)
		inc.Reset(sb, b)

		check := func(tag string, s ga.IncState, c ga.Chromosome) {
			t.Helper()
			got, want := inc.Value(s, c), full(c)
			if got != want {
				t.Fatalf("trial %d %s: delta fitness %v != full decode %v (n=%d m=%d)",
					trial, tag, got, want, n, m)
			}
		}
		check("after reset a", sa, a)
		check("after reset b", sb, b)

		for step := 0; step < 40; step++ {
			switch r.Intn(4) {
			case 0: // mutation-style single-gene edit
				g := r.Intn(n)
				v := r.Intn(m)
				if v != a[g] {
					inc.Update(sa, g, a[g], v)
					a[g] = v
				}
			case 1: // crossover-style range swap
				lo := r.Intn(n)
				hi := lo + r.Intn(n-lo)
				for i := lo; i < hi; i++ {
					a[i], b[i] = b[i], a[i]
				}
				inc.SwapRange(sa, sb, a, b, lo, hi)
			case 2: // selection-style copy (b becomes a clone of a)
				inc.Copy(sb, sa)
				copy(b, a)
			case 3: // repeated Value calls must be stable (cached path)
				check("cached", sa, a)
			}
			check("a", sa, a)
			check("b", sb, b)
		}
	}
}

// TestDeltaModeBitIdentical runs the same STGA workload with and without
// the delta evaluator and requires identical placements — the
// end-to-end form of the exactness invariant — and then once more with
// the runtime cross-check armed, which panics inside ga.Run on the
// first diverging evaluation.
func TestDeltaModeBitIdentical(t *testing.T) {
	run := func(delta DeltaMode, verify bool) []sched.Assignment {
		cfg := DefaultConfig()
		cfg.GA.PopulationSize = 40
		cfg.GA.Generations = 25
		cfg.Delta = delta
		cfg.GA.VerifyIncremental = verify
		s := New(cfg, rng.New(99))
		r := rng.New(41)
		sites, err := grid.PSAPlatform().Generate(r.Derive("sites"))
		if err != nil {
			t.Fatal(err)
		}
		jobs := make([]*grid.Job, 60)
		for i := range jobs {
			jobs[i] = &grid.Job{ID: i, Workload: 1000 + r.Float64()*100000, Nodes: 1,
				SecurityDemand: r.Uniform(0.6, 0.9)}
		}
		var out []sched.Assignment
		st := &sched.State{Sites: sites, Ready: make([]float64, len(sites))}
		for lo := 0; lo < len(jobs); lo += 20 {
			out = append(out, s.Schedule(jobs[lo:lo+20], &sched.State{
				Sites: sites, Ready: append([]float64(nil), st.Ready...),
			})...)
		}
		return out
	}
	full := run(DeltaOff, false)
	delta := run(DeltaOn, false)
	if len(full) != len(delta) {
		t.Fatalf("assignment counts differ: %d vs %d", len(full), len(delta))
	}
	for i := range full {
		if full[i].Job.ID != delta[i].Job.ID || full[i].Site != delta[i].Site {
			t.Fatalf("placement %d diverged: full (job %d → %d) vs delta (job %d → %d)",
				i, full[i].Job.ID, full[i].Site, delta[i].Job.ID, delta[i].Site)
		}
	}
	// The armed cross-check would panic on any divergence.
	run(DeltaOn, true)
}
