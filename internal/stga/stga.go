package stga

import (
	"sort"

	"trustgrid/internal/ga"
	"trustgrid/internal/grid"
	"trustgrid/internal/heuristics"
	"trustgrid/internal/rng"
	"trustgrid/internal/sched"
)

// Config holds the STGA parameters (Table 1 defaults via DefaultConfig).
type Config struct {
	// GA holds the evolutionary hyper-parameters (population 200,
	// 100 generations, crossover 0.8, mutation 0.01).
	GA ga.Config
	// HistorySize is the lookup-table capacity (Table 1: 150).
	HistorySize int
	// SimilarityThreshold gates seeding (Table 1: 0.8).
	SimilarityThreshold float64
	// MaxSeeds caps how many historical schedules enter the initial
	// population; the remainder is random to guarantee diversity (§3).
	// Zero means population/2.
	MaxSeeds int
	// UseEq2Literal selects the paper's literal Eq. 2 similarity instead
	// of the normalized default (DESIGN.md §2.3).
	UseEq2Literal bool
	// DisableHistory turns the STGA into the conventional cold-start GA
	// baseline (the "GA" curve of the paper's Fig. 5 comparison).
	DisableHistory bool
	// Policy is the site admission rule. The default is f-risky at the
	// paper's operating point f = 0.5: the Fig. 7(a) analysis shows the
	// optimal admission threshold lies at 0.5–0.6, and the STGA adopting
	// it is what lets it dominate every heuristic while remaining a heavy
	// risk-taker (its balanced schedules spread load across moderately
	// unsafe sites, so its N_risk stays among the highest). A pure Risky
	// policy admits near-certain-failure placements whose rework
	// concentrates on the few strictly safe sites and drags the tail.
	// Must-be-safe rescheduled jobs are always restricted regardless.
	Policy grid.Policy
	// RecordTrajectories accumulates every batch's best-fitness curve in
	// Scheduler.AllTrajectories (used by the Fig. 5 convergence
	// experiment). Off by default to save memory on long runs.
	RecordTrajectories bool
	// SeedHeuristics adds the current batch's Min-Min and Sufferage
	// schedules to the initial population (on by default). The paper
	// bootstraps the population from heuristic schedules via the history
	// table; seeding the current batch directly makes that bootstrap
	// robust even when no stored entry clears the similarity threshold,
	// and with elitism it guarantees the STGA never returns a batch
	// schedule worse than either heuristic.
	SeedHeuristics bool
	// RiskPenalty κ makes the fitness security-aware: a placement's cost
	// is ETC × (1 + κ·P(fail)), charging the expected rework of risky
	// dispatches. The risk-penalty ablation shows this *hurts*: inflating
	// the ETCs misleads the load balancing, and a hard admission
	// threshold (Policy) beats every κ > 0. Default 0 (fitness on true
	// completion times, as in the paper).
	RiskPenalty float64
	// Security is the failure law used by RiskPenalty (Eq. 1).
	Security grid.SecurityModel
	// LoadWeight is the coefficient of an optional secondary total-load
	// fitness term (see makespanFitness). Default 0: with the f-risky
	// admission threshold in place, the pure completion-time fitness of
	// the paper wins; the ablations show the load term only helps when
	// the policy is fully Risky on wide-speed-spread platforms.
	LoadWeight float64
	// Delta selects the GA evaluation strategy: the incremental (delta)
	// fitness (delta.go) maintains per-site load aggregates through
	// selection, crossover and mutation instead of running a full decode
	// per evaluation. Results are bit-identical either way (test-gated,
	// and checkable at runtime via GA.VerifyIncremental); only the cost
	// profile differs, which is why an automatic default is safe. The
	// delta path requires LoadWeight == 0 and is ignored otherwise.
	Delta DeltaMode
}

// DeltaMode picks between the full-decode and incremental GA
// evaluators. The zero value is DeltaAuto.
type DeltaMode int

const (
	// DeltaAuto (the default) chooses per batch from the measured
	// crossover policy in deltaWins — currently the full decode at every
	// benchmarked scale; see deltaWins for the numbers and the reason.
	DeltaAuto DeltaMode = iota
	// DeltaOn forces the incremental evaluator (benchmarks, tests, and
	// workloads whose operators touch few genes).
	DeltaOn
	// DeltaOff forces the full decode.
	DeltaOff
)

// deltaWins is the DeltaAuto policy: should the incremental evaluator
// run for a batch of n jobs over m sites? Set from end-to-end
// measurement, not theory, and the honest answer today is no at every
// scale: with the fused running-max decode the full evaluation is
// O(n) per individual with one cache-hot scratch buffer, while the
// delta path pays per-individual state Copy traffic (loads[m] +
// dirty-set words) on every selection pick and the default 0.8
// crossover probability dirties most sites for 80% of pairs. Measured
// STGA Schedule (batch 200, this container): m=64 27 vs 42 ms, m=256
// 54 vs 76 ms, m=1024 124 vs 152 ms — full vs delta, before the decode
// fusion widened the gap further. The hook stays so the policy can
// flip from measurement if the operator mix changes (e.g. tiny
// mutation-only generations, where delta's 8.7x microbenchmark win —
// see delta_bench_test.go — would dominate).
func deltaWins(m, n int) bool {
	_, _ = m, n
	return false
}

// enabled resolves the mode for a batch of n jobs over m sites.
func (d DeltaMode) enabled(m, n int) bool {
	switch d {
	case DeltaOn:
		return true
	case DeltaOff:
		return false
	default:
		return deltaWins(m, n)
	}
}

// DefaultConfig returns the Table 1 configuration.
func DefaultConfig() Config {
	return Config{
		GA:                  ga.DefaultConfig(),
		HistorySize:         150,
		SimilarityThreshold: 0.8,
		Policy:              grid.FRiskyPolicy(0.5),
		SeedHeuristics:      true,
		RiskPenalty:         0,
		Security:            grid.NewSecurityModel(),
		LoadWeight:          0,
	}
}

// Scheduler is the Space-Time GA batch scheduler. It implements
// sched.Scheduler. Not safe for concurrent use (it owns a random stream
// and the history table).
type Scheduler struct {
	cfg   Config
	table *HistoryTable
	rand  *rng.Stream
	batch int
	// Persistent seeding heuristics: MinMin and Sufferage carry arena
	// state (candidate buckets, lazy heaps) that is expensive to grow
	// from nothing, so one instance of each lives as long as the
	// scheduler instead of being rebuilt every batch.
	minmin    *heuristics.MinMin
	sufferage *heuristics.Sufferage

	// LastTrajectory is the best-fitness-per-generation curve of the most
	// recent batch (index 0 = initial population). The convergence
	// experiments (Figs. 5 and 7(b)) read it.
	LastTrajectory []float64
	// AllTrajectories holds one trajectory per batch when
	// Config.RecordTrajectories is set.
	AllTrajectories [][]float64
}

// New creates an STGA scheduler. r must be a dedicated stream.
func New(cfg Config, r *rng.Stream) *Scheduler {
	table := NewHistoryTable(cfg.HistorySize)
	table.UseEq2Literal = cfg.UseEq2Literal
	return &Scheduler{cfg: cfg, table: table, rand: r,
		minmin:    heuristics.NewMinMin(cfg.Policy),
		sufferage: heuristics.NewSufferage(cfg.Policy),
	}
}

// Name implements sched.Scheduler.
func (s *Scheduler) Name() string {
	if s.cfg.DisableHistory {
		return "GA (cold start)"
	}
	return "STGA"
}

// Table exposes the history table for inspection (tests, ablations).
func (s *Scheduler) Table() *HistoryTable { return s.table }

// batchInputs builds the three Eq. 2 parameter vectors for a batch from
// the columnar snapshot. The ETC matrix and SD vector are the
// snapshot's own columns (kernel.Build computes them with exactly
// grid.ETCMatrix's layout and arithmetic); history entries retain them,
// which is safe because snapshots are immutable once built.
func batchInputs(batch []*grid.Job, st *sched.State) (ready, etc, sd []float64) {
	k := st.Snapshot(batch)
	ready = make([]float64, len(k.Ready))
	for i, r := range k.Ready {
		rel := r - k.Now
		if rel < 0 {
			rel = 0
		}
		ready[i] = rel
	}
	return ready, k.ETC, k.SD
}

// fitnessBase returns max(Now, Ready) per site — the availability
// offsets both the full-decode and the delta fitness add loads to.
func fitnessBase(st *sched.State) []float64 {
	base := make([]float64, len(st.Ready))
	for i, r := range st.Ready {
		if st.Now > r {
			base[i] = st.Now
		} else {
			base[i] = r
		}
	}
	return base
}

// makespanFitness returns the GA fitness function: the batch makespan of
// the encoded schedule given the current ready vector (§3: "the fitness
// value ... is the completion time of the schedule"), plus an optional
// total-load term (loadWeight × mean consumed execution time). The load
// term exists for Risky-policy configurations on wide-speed-spread
// platforms, where pure makespan treats every placement below the batch
// maximum as free; under the default f-risky policy it is disabled
// (loadWeight = 0), matching the paper's fitness exactly.
//
// The zero-weight decode — the GA's hottest loop — is fused: the span
// is the running maximum of base[site]+load taken as the loads
// accumulate. ETCs are non-negative, so each site's partial sums rise
// to its final load and the running maximum equals the separate
// final-pass maximum bit-for-bit (same candidate floats, same per-site
// addition order). Fusing removes the O(m) finishing scan — at m=1024,
// batch 200, the old decode spent 5/6 of its time visiting sites the
// chromosome never touches. The scratch zeroing stays (Go's memclr of
// 8 KB is ~60 ns); an epoch-stamp variant that avoids it was measured
// 2-3x slower at m ∈ {256, 1024} because its per-gene first-touch
// branch is data-dependent and mispredicts constantly. The l > 0 guard
// preserves the scan version's (and the delta evaluator's) semantics
// for the zero-ETC edge: a site whose assigned jobs all have zero ETC
// contributes no candidate, and partial sums of an eventually-positive
// site are dominated by that site's own final value.
func makespanFitness(nSites int, base, etc []float64, loadWeight float64) ga.Fitness {
	loads := make([]float64, nSites) // scratch, reused across calls
	if loadWeight == 0 {
		return func(c ga.Chromosome) float64 {
			for i := range loads {
				loads[i] = 0
			}
			span := 0.0
			off := 0
			for _, site := range c {
				l := loads[site] + etc[off+site]
				loads[site] = l
				if l > 0 {
					if f := base[site] + l; f > span {
						span = f
					}
				}
				off += nSites
			}
			return span
		}
	}
	return func(c ga.Chromosome) float64 {
		for i := range loads {
			loads[i] = 0
		}
		total := 0.0
		for jobIdx, site := range c {
			e := etc[jobIdx*nSites+site]
			loads[site] += e
			total += e
		}
		span := 0.0
		for i, l := range loads {
			if l == 0 {
				continue
			}
			if f := base[i] + l; f > span {
				span = f
			}
		}
		return span + loadWeight*total/float64(nSites)
	}
}

// adaptSeed transfers a stored schedule onto the current batch by rank
// matching: jobs on both sides are sorted by (workload surrogate,
// security demand) and paired in order, so a recurring job spec inherits
// the site its twin was assigned last time. Positional tiling — the
// naive adaptation — scrambles the mapping whenever batch boundaries
// drift relative to the recurring submission pattern; rank matching is
// exact for identical spec multisets and graceful otherwise. The GA's
// Repair clamps any gene the current policy disallows.
func adaptSeed(e *Entry, etc, sd []float64, nSites, length int) ga.Chromosome {
	if len(e.SD) == 0 {
		return make(ga.Chromosome, length)
	}
	return adaptSeedOrdered(e, rankOrder(etc, sd, nSites, length), length)
}

// adaptSeedOrdered is adaptSeed with the new batch's rank order already
// computed: it is identical for every match of one lookup, and the
// stored side's order is cached on the entry at Insert, so adapting a
// full complement of seeds costs one sort instead of two per seed.
func adaptSeedOrdered(e *Entry, newOrder []int, length int) ga.Chromosome {
	storedLen := len(e.SD)
	if storedLen == 0 {
		return make(ga.Chromosome, length)
	}
	storedOrder := e.rankOrd
	if storedOrder == nil {
		storedOrder = rankOrder(e.ETC, e.SD, len(e.ETC)/storedLen, storedLen)
	}
	out := make(ga.Chromosome, length)
	for rank, newIdx := range newOrder {
		storedIdx := storedOrder[rank*storedLen/length]
		out[newIdx] = e.Best[storedIdx]
	}
	return out
}

// rankOrder returns job indices sorted by (first-site ETC, SD). The
// first ETC column is a workload surrogate: with fixed sites every row
// is proportional to the job's workload.
func rankOrder(etc, sd []float64, nSites, n int) []int {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ea, eb := etc[order[a]*nSites], etc[order[b]*nSites]
		if ea != eb {
			return ea < eb
		}
		return sd[order[a]] < sd[order[b]]
	})
	return order
}

// heuristicChromosome encodes a batch heuristic's schedule as a GA seed.
func heuristicChromosome(h sched.Scheduler, batch []*grid.Job, st *sched.State) ga.Chromosome {
	pos := make(map[int]int, len(batch))
	for i, j := range batch {
		pos[j.ID] = i
	}
	c := make(ga.Chromosome, len(batch))
	for _, a := range h.Schedule(batch, st) {
		c[pos[a.Job.ID]] = a.Site
	}
	return c
}

// Schedule implements sched.Scheduler: seed the GA population from the
// history table, evolve, record the result back into the table, and
// return the best assignment.
func (s *Scheduler) Schedule(batch []*grid.Job, st *sched.State) []sched.Assignment {
	if len(batch) == 0 {
		return nil
	}
	s.batch++
	runRand := s.rand.DeriveIndexed("batch", s.batch)

	kern := st.Snapshot(batch)
	allowed := make([][]int, len(batch))
	fellBack := make([]bool, len(batch))
	for i := range batch {
		// Liveness-aware: a departed site never enters a gene's allowed
		// set, so the GA cannot evolve placements onto it. The snapshot's
		// eligibility classes are shared with the heuristic seeding below.
		elig := kern.Eligible(s.cfg.Policy, i)
		allowed[i], fellBack[i] = elig.Sites, elig.FellBack
	}
	ready, etc, sd := batchInputs(batch, st)

	var seeds []ga.Chromosome
	if s.cfg.SeedHeuristics {
		seeds = append(seeds, heuristicChromosome(s.minmin, batch, st))
		seeds = append(seeds, heuristicChromosome(s.sufferage, batch, st))
	}
	if !s.cfg.DisableHistory {
		maxSeeds := s.cfg.MaxSeeds
		if maxSeeds == 0 {
			maxSeeds = s.cfg.GA.PopulationSize / 2
		}
		nSites := len(st.Sites)
		if matches := s.table.Lookup(ready, etc, sd, s.cfg.SimilarityThreshold, maxSeeds); len(matches) > 0 {
			newOrder := rankOrder(etc, sd, nSites, len(batch))
			for _, m := range matches {
				seeds = append(seeds, adaptSeedOrdered(m.Entry, newOrder, len(batch)))
			}
		}
	}

	fitEtc := etc
	if s.cfg.RiskPenalty > 0 {
		fitEtc = make([]float64, len(etc))
		nSites := len(st.Sites)
		for i, j := range batch {
			for k, site := range st.Sites {
				p := s.cfg.Security.FailProb(j.SecurityDemand, site.SecurityLevel)
				fitEtc[i*nSites+k] = etc[i*nSites+k] * (1 + s.cfg.RiskPenalty*p)
			}
		}
	}
	// The fitness closure keeps a per-instance scratch buffer, so the
	// parallel evaluator gets a factory producing one instance per
	// worker; the bare Fitness covers the serial path. Config.Delta
	// resolves whether the incremental evaluator runs, which is
	// bit-identical by construction (the full decode stays available as
	// the VerifyIncremental cross-check).
	base := fitnessBase(st)
	nSites := len(st.Sites)
	problem := &ga.Problem{
		Length:  len(batch),
		Allowed: allowed,
		Fitness: makespanFitness(nSites, base, fitEtc, s.cfg.LoadWeight),
		NewFitness: func() ga.Fitness {
			return makespanFitness(nSites, base, fitEtc, s.cfg.LoadWeight)
		},
	}
	if s.cfg.Delta.enabled(nSites, len(batch)) && s.cfg.LoadWeight == 0 {
		problem.Incremental = newMakespanInc(base, fitEtc, len(batch), nSites)
	}
	res, err := ga.Run(problem, s.cfg.GA, seeds, runRand)
	if err != nil {
		// The problem construction above is total (allowed sets are never
		// empty thanks to the policy fallback), so an error here is a
		// programming bug, not an input condition.
		panic("stga: GA run failed: " + err.Error())
	}
	s.LastTrajectory = res.Trajectory
	if s.cfg.RecordTrajectories {
		s.AllTrajectories = append(s.AllTrajectories, res.Trajectory)
	}

	if !s.cfg.DisableHistory {
		// The ETC/SD slices alias the round's snapshot, whose storage the
		// engine reuses next round; the table outlives it, so copy.
		s.table.Insert(&Entry{
			Ready: ready,
			ETC:   append([]float64(nil), etc...),
			SD:    append([]float64(nil), sd...),
			Best:  res.Best.Clone(),
		})
	}

	// Emit each site's jobs shortest-first (SPT). The per-site job sets —
	// and therefore the batch makespan the GA optimized — are unchanged,
	// but serving short jobs first minimizes the mean completion time
	// within each site's queue, which is what the response-time and
	// slowdown metrics reward.
	//
	// On DAG rounds (engine-installed ranks) the per-site fold instead
	// processes jobs in descending upward rank — the precedence-feasible
	// decode of DESIGN.md §14: jobs heading the heaviest blocked chains
	// run first within their site, releasing successors as early as
	// possible. The batch itself can never contain both ends of an edge
	// (ready-release batch formation), so feasibility needs only this
	// ordering choice. The switch keys on HasDAGRanks, which is false on
	// every edge-free round — those keep the historical SPT key and thus
	// bit-identical emission. Neither key changes the GA's draw sequence.
	type emit struct {
		a sched.Assignment
		// key sorts ascending within a site: ETC for SPT, negated upward
		// rank on DAG rounds.
		key float64
	}
	useRank := kern.HasDAGRanks()
	var ranks []float64
	if useRank {
		ranks = kern.Ranks()
	}
	emits := make([]emit, len(batch))
	for i, j := range batch {
		site := res.Best[i]
		key := etc[i*nSites+site]
		if useRank {
			key = -ranks[i]
		}
		emits[i] = emit{
			a:   sched.Assignment{Job: j, Site: site, FellBack: fellBack[i]},
			key: key,
		}
	}
	sort.SliceStable(emits, func(a, b int) bool {
		if emits[a].a.Site != emits[b].a.Site {
			return emits[a].a.Site < emits[b].a.Site
		}
		return emits[a].key < emits[b].key
	})
	out := make([]sched.Assignment, len(batch))
	for i, e := range emits {
		out[i] = e.a
	}
	return out
}

// Train pre-populates the history table by scheduling training jobs in
// fixed-size batches with the Min-Min and Sufferage heuristics
// (alternating), as the paper does with 500 training jobs before
// measurement (§3, Table 1). The training dispatches advance a private
// copy of the ready vector so successive entries see realistic site
// availability; the real simulation state is untouched.
func (s *Scheduler) Train(jobs []*grid.Job, sites []*grid.Site, batchSize int) {
	if s.cfg.DisableHistory || batchSize <= 0 {
		return
	}
	minmin, sufferage := s.minmin, s.sufferage
	ready := make([]float64, len(sites))
	for start, b := 0, 0; start < len(jobs); start, b = start+batchSize, b+1 {
		end := start + batchSize
		if end > len(jobs) {
			end = len(jobs)
		}
		batch := jobs[start:end]
		st := &sched.State{Now: 0, Sites: sites, Ready: ready}
		var as []sched.Assignment
		if b%2 == 0 {
			as = minmin.Schedule(batch, st)
		} else {
			as = sufferage.Schedule(batch, st)
		}
		readyVec, etc, sd := batchInputs(batch, st)
		best := make(ga.Chromosome, len(batch))
		pos := make(map[int]int, len(batch))
		for i, j := range batch {
			pos[j.ID] = i
		}
		for _, a := range as {
			best[pos[a.Job.ID]] = a.Site
			ready[a.Site] = st.CompletionTime(a.Job, a.Site)
		}
		// Copy the snapshot-aliased slices for the same reason Schedule
		// does: entries outlive the batch.
		s.table.Insert(&Entry{
			Ready: readyVec,
			ETC:   append([]float64(nil), etc...),
			SD:    append([]float64(nil), sd...),
			Best:  best,
		})
	}
}
