package stga

import (
	"encoding/json"
	"fmt"

	"trustgrid/internal/ga"
	"trustgrid/internal/rng"
)

// savedState is the JSON form of the scheduler's cross-batch state: the
// GA stream position, the batch counter (it derives nothing today but
// keeps diagnostics aligned), and the full history table with its LRU
// clock and hit statistics. Restoring it makes every post-restore GA
// draw and history lookup identical to the run that saved it — the
// engine snapshot's recovery parity contract extended to the STGA.
// Trajectory recordings (LastTrajectory, AllTrajectories) are
// observability, not decision state, and are not carried across.
type savedState struct {
	Rand    rng.State    `json:"rand"`
	Batch   int          `json:"batch"`
	Clock   uint64       `json:"clock"`
	Lookups uint64       `json:"lookups"`
	Hits    uint64       `json:"hits"`
	Entries []savedEntry `json:"entries"`
}

type savedEntry struct {
	Ready   []float64     `json:"ready"`
	ETC     []float64     `json:"etc"`
	SD      []float64     `json:"sd"`
	Best    ga.Chromosome `json:"best"`
	LastUse uint64        `json:"last_use"`
}

// SaveState implements sched.StatefulScheduler: it serializes the rng
// position, batch counter and history table.
func (s *Scheduler) SaveState() ([]byte, error) {
	st := savedState{
		Rand:    s.rand.State(),
		Batch:   s.batch,
		Clock:   s.table.clock,
		Lookups: s.table.lookups,
		Hits:    s.table.hits,
		Entries: make([]savedEntry, len(s.table.entries)),
	}
	for i, e := range s.table.entries {
		st.Entries[i] = savedEntry{
			Ready: e.Ready, ETC: e.ETC, SD: e.SD,
			Best: e.Best, LastUse: e.lastUse,
		}
	}
	return json.Marshal(st)
}

// RestoreState implements sched.StatefulScheduler: it replaces the rng
// position, batch counter and history table with the saved ones. The
// scheduler must have been built with the same Config (capacity and
// similarity settings are re-derived from it, not from the blob).
func (s *Scheduler) RestoreState(data []byte) error {
	var st savedState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("stga: restore: %w", err)
	}
	if len(st.Entries) > s.table.capacity {
		return fmt.Errorf("stga: restore: %d saved entries exceed table capacity %d",
			len(st.Entries), s.table.capacity)
	}
	table := NewHistoryTable(s.table.capacity)
	table.UseEq2Literal = s.table.UseEq2Literal
	table.clock = st.Clock
	table.lookups = st.Lookups
	table.hits = st.Hits
	table.entries = make([]*Entry, len(st.Entries))
	for i, e := range st.Entries {
		table.entries[i] = &Entry{
			Ready: e.Ready, ETC: e.ETC, SD: e.SD,
			Best: e.Best, lastUse: e.LastUse,
		}
	}
	s.table = table
	s.rand.SetState(st.Rand)
	s.batch = st.Batch
	return nil
}
