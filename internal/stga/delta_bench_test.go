package stga

import (
	"fmt"
	"testing"

	"trustgrid/internal/ga"
	"trustgrid/internal/rng"
)

// geneEdit is one scripted mutation: individual idx's gene set to val.
type geneEdit struct {
	idx, gene, val int
}

// fitnessPathScript precomputes a steady-state generation's worth of
// gene edits per script slot, drawn with the GA's own per-gene mutation
// probability (Table 1: 0.01). Both benchmark arms replay the identical
// script, so the measured difference is purely the evaluation strategy.
func fitnessPathScript(r *rng.Stream, gens, pop, n, m int) [][]geneEdit {
	script := make([][]geneEdit, gens)
	for g := range script {
		for idx := 0; idx < pop; idx++ {
			for gene := 0; gene < n; gene++ {
				if r.Bool(0.01) {
					script[g] = append(script[g], geneEdit{idx: idx, gene: gene, val: r.Intn(m)})
				}
			}
		}
	}
	return script
}

// BenchmarkFitnessPath isolates the GA's fitness-evaluation stage in
// its steady-state regime — a converged population (clones of one
// incumbent, as elitism plus selection pressure produce from roughly a
// third of the run onward, and from the first generation on
// history-seeded STGA batches) receiving Table 1 mutation traffic —
// and evaluates every individual each generation, the exact access
// pattern inside ga.Run:
//
//	full-decode — the pre-kernel path: one O(n) chromosome decode per
//	              individual per generation, regardless of what changed
//	delta       — the incremental path (Config.Delta = DeltaOn): per-site load
//	              aggregates updated per gene edit; untouched
//	              individuals evaluate from cache in O(1)
//
// Both arms replay the identical edit script and produce bit-identical
// fitness vectors (TestDeltaFitnessMatchesFullDecode gates that); the
// ratio of the two timings is the fitness-path speedup.
func BenchmarkFitnessPath(b *testing.B) {
	const pop, m, gens = 200, 20, 16
	for _, n := range []int{50, 200} {
		r := rng.New(7)
		inc, full := randomFitnessInstance(r, n, m)
		script := fitnessPathScript(r.Derive("script"), gens, pop, n, m)
		incumbent := make(ga.Chromosome, n)
		for i := range incumbent {
			incumbent[i] = r.Intn(m)
		}
		newPop := func() []ga.Chromosome {
			chroms := make([]ga.Chromosome, pop)
			for i := range chroms {
				chroms[i] = incumbent.Clone()
			}
			return chroms
		}
		sink := 0.0

		b.Run(fmt.Sprintf("full-decode/batch=%d", n), func(b *testing.B) {
			chroms := newPop()
			b.ResetTimer()
			for it := 0; it < b.N; it++ {
				edits := script[it%gens]
				for _, e := range edits {
					chroms[e.idx][e.gene] = e.val
				}
				for i := range chroms {
					sink += full(chroms[i])
				}
			}
		})

		b.Run(fmt.Sprintf("delta/batch=%d", n), func(b *testing.B) {
			chroms := newPop()
			states := make([]ga.IncState, pop)
			for i := range states {
				states[i] = inc.NewState()
				inc.Reset(states[i], chroms[i])
			}
			b.ResetTimer()
			for it := 0; it < b.N; it++ {
				edits := script[it%gens]
				for _, e := range edits {
					if old := chroms[e.idx][e.gene]; old != e.val {
						inc.Update(states[e.idx], e.gene, old, e.val)
						chroms[e.idx][e.gene] = e.val
					}
				}
				for i := range chroms {
					sink += inc.Value(states[i], chroms[i])
				}
			}
		})
		_ = sink
	}
}
