package stga

import (
	"trustgrid/internal/ga"
)

// Entry is one row of the STGA history lookup table (paper §3): the three
// input parameters of a past scheduling round and the best schedule the
// GA (or a training heuristic) found for it.
type Entry struct {
	// Ready is the site availability vector, stored relative to the
	// batch's scheduling instant (ready − now, clamped at 0) so entries
	// from different simulation times remain comparable.
	Ready []float64
	// ETC is the batch's execution-time matrix, flattened job-major.
	ETC []float64
	// SD is the batch's security-demand vector.
	SD []float64
	// Best is the best assignment found for the batch.
	Best ga.Chromosome

	lastUse uint64 // LRU clock stamp

	// Cached maximal elements of the three vectors (same strict-> over a
	// zero start as the similarity scan), computed at Insert. The slices
	// are treated as immutable once stored, so Lookup's per-entry
	// similarity reduces to the branchless difference sum.
	maxReady, maxETC, maxSD float64
	// rankOrd caches rankOrder over the stored batch (also immutable),
	// sparing adaptSeed a sort per match.
	rankOrd []int
}

// HistoryTable is the fixed-capacity LRU store of past scheduling
// results. Table 1: capacity 150, similarity threshold 0.8.
type HistoryTable struct {
	capacity int
	entries  []*Entry
	clock    uint64
	// UseEq2Literal switches the similarity measure to the paper's
	// literal Eq. 2 (see DESIGN.md §2.3); default false = normalized.
	UseEq2Literal bool

	// statistics
	lookups uint64
	hits    uint64
}

// NewHistoryTable creates a table with the given capacity.
func NewHistoryTable(capacity int) *HistoryTable {
	if capacity <= 0 {
		capacity = 1
	}
	return &HistoryTable{capacity: capacity}
}

// Len returns the number of stored entries.
func (t *HistoryTable) Len() int { return len(t.entries) }

// Capacity returns the table capacity.
func (t *HistoryTable) Capacity() int { return t.capacity }

// HitRate returns the fraction of lookups that produced at least one
// seed. Used by the ablation experiments.
func (t *HistoryTable) HitRate() float64 {
	if t.lookups == 0 {
		return 0
	}
	return float64(t.hits) / float64(t.lookups)
}

// entrySimilarity is the average of the three per-parameter similarities
// (paper §3: "the similarity between the new input jobs and each entry is
// the average similarity for the three parameters"). The reference form;
// Lookup computes the same value via similarityPremax with cached maxima.
func (t *HistoryTable) entrySimilarity(e *Entry, ready, etc, sd []float64) float64 {
	sim := Similarity
	if t.UseEq2Literal {
		sim = SimilarityEq2
	}
	return ((sim(e.Ready, ready) + sim(e.ETC, etc)) + sim(e.SD, sd)) / 3
}

// Match is a lookup result: a stored schedule with its similarity score.
type Match struct {
	Entry      *Entry
	Similarity float64
}

// Lookup returns up to maxSeeds entries whose average similarity meets
// the threshold, most similar first. Returned entries get their LRU
// stamps refreshed.
func (t *HistoryTable) Lookup(ready, etc, sd []float64, threshold float64, maxSeeds int) []Match {
	t.lookups++
	norm := !t.UseEq2Literal
	qReady, qETC, qSD := maxElemOf(ready), maxElemOf(etc), maxElemOf(sd)
	var matches []Match
	for _, e := range t.entries {
		sR := similarityPremax(e.Ready, ready, e.maxReady, qReady, norm)
		sSD := similarityPremax(e.SD, sd, e.maxSD, qSD, norm)
		// Every component similarity is at most 1, and IEEE addition and
		// division are monotone, so substituting 1 for the ETC term bounds
		// the average from above in the entrySimilarity rounding order.
		// Entries that cannot reach the threshold skip the ETC scan — the
		// dominant cost at m·n elements against m and n for the other two.
		if ((sR+1)+sSD)/3 < threshold {
			continue
		}
		sETC := similarityPremax(e.ETC, etc, e.maxETC, qETC, norm)
		s := ((sR + sETC) + sSD) / 3
		if s >= threshold {
			matches = append(matches, Match{Entry: e, Similarity: s})
		}
	}
	// Insertion sort by similarity descending (tables are small: <= 150).
	for i := 1; i < len(matches); i++ {
		for k := i; k > 0 && matches[k].Similarity > matches[k-1].Similarity; k-- {
			matches[k], matches[k-1] = matches[k-1], matches[k]
		}
	}
	if maxSeeds > 0 && len(matches) > maxSeeds {
		matches = matches[:maxSeeds]
	}
	if len(matches) > 0 {
		t.hits++
	}
	for _, m := range matches {
		t.clock++
		m.Entry.lastUse = t.clock
	}
	return matches
}

// Insert stores a new entry, evicting the least-recently-used one when
// the table is full (paper §3: "the LRU algorithm is adopted to update
// the entries in the lookup table").
func (t *HistoryTable) Insert(e *Entry) {
	t.clock++
	e.lastUse = t.clock
	e.maxReady, e.maxETC, e.maxSD = maxElemOf(e.Ready), maxElemOf(e.ETC), maxElemOf(e.SD)
	if n := len(e.SD); n > 0 && len(e.ETC) >= n {
		e.rankOrd = rankOrder(e.ETC, e.SD, len(e.ETC)/n, n)
	}
	if len(t.entries) < t.capacity {
		t.entries = append(t.entries, e)
		return
	}
	victim := 0
	for i := 1; i < len(t.entries); i++ {
		if t.entries[i].lastUse < t.entries[victim].lastUse {
			victim = i
		}
	}
	t.entries[victim] = e
}
