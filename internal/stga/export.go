package stga

import "trustgrid/internal/ga"

// NewDeltaEvaluator exposes the incremental (delta) makespan fitness
// for the benchmark harness (internal/benchkit) and tooling. base is
// max(now, ready) per site; etc is the n×m job-major execution-time
// matrix. See delta.go for the exactness contract.
func NewDeltaEvaluator(base, etc []float64, n, m int) ga.Incremental {
	return newMakespanInc(base, etc, n, m)
}

// MakespanFitness exposes the full-decode makespan fitness for the
// benchmark harness and tooling; the zero loadWeight form is the
// paper's fitness and the GA's default evaluation path.
func MakespanFitness(nSites int, base, etc []float64, loadWeight float64) ga.Fitness {
	return makespanFitness(nSites, base, etc, loadWeight)
}
