package stga

import (
	"trustgrid/internal/ga"
)

// makespanInc is the delta (incremental) form of makespanFitness: it
// implements ga.Incremental so the GA pays for re-decoding only the
// sites a generation's operators actually touched — a gene-diff path
// for mutation (Update), a dirty-site path for crossover (SwapRange) —
// instead of a full chromosome decode per individual per evaluation.
// Used whenever Config.LoadWeight == 0 (the paper's fitness); the
// total-load term is an order-dependent sum over all genes, so
// configurations using it fall back to the full decode.
//
// Exactness invariant (gated by TestDeltaFitnessMatchesFullDecode and
// ga.Config.VerifyIncremental): Value returns the bit-identical float64
// makespanFitness would. The full decode accumulates each site's load
// by scanning genes in ascending index order, and per-site sums depend
// only on that site's own genes — so rebuilding a dirty site's load
// with one ascending scan of the chromosome (skipping clean sites)
// replays the exact floating-point operation sequence of the full
// decode, while clean sites keep their already-exact loads untouched.
// The span is a max, which is scan-order independent, so it may be
// tightened from a cached value (see Value).
type makespanInc struct {
	n, m int
	base []float64 // max(now, ready) per site
	etc  []float64 // fitness ETC matrix, row-major job-major
}

func newMakespanInc(base, etc []float64, n, m int) *makespanInc {
	return &makespanInc{n: n, m: m, base: base, etc: etc}
}

// makespanState is one individual's decode state: per-site load
// aggregates plus the dirty bookkeeping that says which of them are
// stale.
type makespanState struct {
	loads []float64
	// dirty marks sites whose loads must be rebuilt before the next
	// Value; dirtyList is the same set in insertion order.
	dirty     []bool
	dirtyList []int
	// val caches the last computed fitness; valid until the next
	// effective gene change, so individuals untouched by a generation's
	// operators (or crossed with an identical partner) evaluate in O(1).
	// spanSite is a site achieving val: while it stays clean, a later
	// Value only needs to max the dirty sites against the cached span
	// instead of rescanning every site (a max does not depend on scan
	// order, so the value is still exactly the full decode's). -1 when
	// unknown.
	val      float64
	valid    bool
	spanSite int
}

func (st *makespanState) markDirty(site int) {
	if !st.dirty[site] {
		st.dirty[site] = true
		st.dirtyList = append(st.dirtyList, site)
	}
}

// NewState implements ga.Incremental.
func (f *makespanInc) NewState() ga.IncState {
	return &makespanState{
		loads:     make([]float64, f.m),
		dirty:     make([]bool, f.m),
		dirtyList: make([]int, 0, f.m),
		spanSite:  -1,
	}
}

// Reset implements ga.Incremental: a full decode of c into the state.
func (f *makespanInc) Reset(s ga.IncState, c ga.Chromosome) {
	st := s.(*makespanState)
	for i := range st.loads {
		st.loads[i] = 0
	}
	for i := range st.dirty {
		st.dirty[i] = false
	}
	st.dirtyList = st.dirtyList[:0]
	st.valid = false
	st.spanSite = -1
	for i, site := range c {
		st.loads[site] += f.etc[i*f.m+site]
	}
}

// Copy implements ga.Incremental.
func (f *makespanInc) Copy(dst, src ga.IncState) {
	d, s := dst.(*makespanState), src.(*makespanState)
	copy(d.loads, s.loads)
	copy(d.dirty, s.dirty)
	d.dirtyList = append(d.dirtyList[:0], s.dirtyList...)
	d.val, d.valid, d.spanSite = s.val, s.valid, s.spanSite
}

// Update implements ga.Incremental: job `gene` moved from site oldVal
// to site newVal (mutation's gene-diff path).
func (f *makespanInc) Update(s ga.IncState, gene, oldVal, newVal int) {
	st := s.(*makespanState)
	st.valid = false
	st.markDirty(oldVal)
	st.markDirty(newVal)
}

// SwapRange implements ga.Incremental: genes [lo, hi) were exchanged
// between the two individuals (crossover's dirty-site path). One
// ascending scan of the already-swapped range finds the genes where the
// parents disagreed; each such job left one site and joined the other
// in both children, so those two sites go dirty in both states.
func (f *makespanInc) SwapRange(sa, sb ga.IncState, a, b ga.Chromosome, lo, hi int) {
	sta, stb := sa.(*makespanState), sb.(*makespanState)
	for i := lo; i < hi; i++ {
		if a[i] == b[i] {
			continue
		}
		sta.valid, stb.valid = false, false
		x, y := a[i], b[i]
		if !sta.dirty[x] {
			sta.dirty[x] = true
			sta.dirtyList = append(sta.dirtyList, x)
		}
		if !sta.dirty[y] {
			sta.dirty[y] = true
			sta.dirtyList = append(sta.dirtyList, y)
		}
		if !stb.dirty[x] {
			stb.dirty[x] = true
			stb.dirtyList = append(stb.dirtyList, x)
		}
		if !stb.dirty[y] {
			stb.dirty[y] = true
			stb.dirtyList = append(stb.dirtyList, y)
		}
		// A maximally disruptive crossover saturates both dirty sets
		// long before the tail ends; nothing left to learn.
		if len(sta.dirtyList) == f.m && len(stb.dirtyList) == f.m {
			return
		}
	}
}

// Value implements ga.Incremental: rebuild the dirty sites' loads with
// one ascending chromosome scan, then take the span. Untouched
// individuals return the cached value outright.
func (f *makespanInc) Value(s ga.IncState, c ga.Chromosome) float64 {
	st := s.(*makespanState)
	if st.valid {
		return st.val
	}
	nd := len(st.dirtyList)
	if nd > 0 {
		m := f.m
		if 2*nd >= m {
			// Most sites are stale: a branch-free full decode beats the
			// per-gene dirty probe, and clean sites just recompute their
			// already-exact values.
			for i := range st.loads {
				st.loads[i] = 0
			}
			for i, site := range c {
				st.loads[site] += f.etc[i*m+site]
			}
		} else {
			for _, k := range st.dirtyList {
				st.loads[k] = 0
			}
			for i, site := range c {
				if st.dirty[site] {
					st.loads[site] += f.etc[i*m+site]
				}
			}
		}
	}
	// Span. Since the last cached span only the dirty sites' loads
	// changed; if the site that achieved it is clean, that value is
	// still attained and only the dirty sites can exceed it — an
	// O(dirty) max instead of an O(sites) rescan.
	if st.spanSite >= 0 && nd > 0 && !st.dirty[st.spanSite] {
		span, site := st.val, st.spanSite
		for _, k := range st.dirtyList {
			st.dirty[k] = false
			l := st.loads[k]
			if l == 0 {
				continue
			}
			if v := f.base[k] + l; v > span {
				span, site = v, k
			}
		}
		st.dirtyList = st.dirtyList[:0]
		st.val, st.valid, st.spanSite = span, true, site
		return span
	}
	for _, k := range st.dirtyList {
		st.dirty[k] = false
	}
	st.dirtyList = st.dirtyList[:0]
	span, site := 0.0, -1
	for k, l := range st.loads {
		if l == 0 {
			continue
		}
		if v := f.base[k] + l; v > span {
			span, site = v, k
		}
	}
	st.val, st.valid, st.spanSite = span, true, site
	return span
}
