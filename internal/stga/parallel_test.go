package stga

import (
	"reflect"
	"testing"

	"trustgrid/internal/grid"
	"trustgrid/internal/rng"
	"trustgrid/internal/sched"
)

// TestParallelWorkersPreserveSchedule checks the end-to-end determinism
// contract at the scheduler level: a full simulation with parallel GA
// fitness evaluation must replay the serial run record-for-record.
func TestParallelWorkersPreserveSchedule(t *testing.T) {
	run := func(workers int) *sched.Result {
		r := rng.New(31)
		sites, err := grid.PSAPlatform().Generate(r.Derive("sites"))
		if err != nil {
			t.Fatal(err)
		}
		jobs := make([]*grid.Job, 120)
		for i := range jobs {
			jobs[i] = &grid.Job{
				ID:             i,
				Arrival:        float64(i) * 40,
				Workload:       1000 + r.Float64()*150000,
				Nodes:          1,
				SecurityDemand: r.Uniform(0.6, 0.9),
			}
		}
		cfg := DefaultConfig()
		cfg.GA.PopulationSize = 30
		cfg.GA.Generations = 12
		cfg.GA.Workers = workers
		sc := New(cfg, rng.New(77))
		res, err := sched.Run(sched.RunConfig{
			Jobs: jobs, Sites: sites, Scheduler: sc,
			BatchInterval: 800, Rand: rng.New(5),
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	serial := run(1)
	for _, w := range []int{0, 4} {
		par := run(w)
		if !reflect.DeepEqual(par.Summary, serial.Summary) {
			t.Fatalf("workers=%d: summary diverged from serial", w)
		}
		if !reflect.DeepEqual(par.Records, serial.Records) {
			t.Fatalf("workers=%d: job records diverged from serial", w)
		}
	}
}
