package stga

import (
	"math"
	"testing"
	"testing/quick"

	"trustgrid/internal/ga"
	"trustgrid/internal/grid"
	"trustgrid/internal/heuristics"
	"trustgrid/internal/rng"
	"trustgrid/internal/sched"
)

// --- similarity ---

func TestSimilarityIdentical(t *testing.T) {
	v := []float64{1, 2, 3, 4}
	if s := Similarity(v, v); s != 1 {
		t.Fatalf("Similarity(v,v) = %v, want 1", s)
	}
	if s := SimilarityEq2(v, v); s != 1 {
		t.Fatalf("SimilarityEq2(v,v) = %v, want 1", s)
	}
}

func TestSimilarityEmpty(t *testing.T) {
	if s := Similarity(nil, nil); s != 1 {
		t.Fatalf("both empty should be 1, got %v", s)
	}
	if s := Similarity([]float64{1}, nil); s != 0 {
		t.Fatalf("one empty should be 0, got %v", s)
	}
}

func TestSimilarityAllZero(t *testing.T) {
	if s := Similarity([]float64{0, 0}, []float64{0, 0}); s != 1 {
		t.Fatalf("all-zero vectors are identical, got %v", s)
	}
}

func TestSimilarityKnownValue(t *testing.T) {
	a := []float64{10, 20}
	b := []float64{10, 10}
	// Eq2 literal: 1 - 10/20 = 0.5. Normalized: 1 - 10/(2*20) = 0.75.
	if s := SimilarityEq2(a, b); math.Abs(s-0.5) > 1e-12 {
		t.Fatalf("Eq2 = %v, want 0.5", s)
	}
	if s := Similarity(a, b); math.Abs(s-0.75) > 1e-12 {
		t.Fatalf("normalized = %v, want 0.75", s)
	}
}

func TestEq2GoesNegativeOnLongVectors(t *testing.T) {
	// The documented pathology: many moderate element-wise differences
	// push the literal Eq. 2 below zero while the normalized variant
	// stays high. This is why the scheduler defaults to normalized.
	a := make([]float64, 50)
	b := make([]float64, 50)
	for i := range a {
		a[i] = 100
		b[i] = 90
	}
	if s := SimilarityEq2(a, b); s >= 0 {
		t.Fatalf("Eq2 literal should be negative here, got %v", s)
	}
	if s := Similarity(a, b); s < 0.85 {
		t.Fatalf("normalized should stay high, got %v", s)
	}
}

func TestSimilaritySymmetricAndBounded(t *testing.T) {
	r := rng.New(42)
	check := func(n uint8) bool {
		k := int(n%20) + 1
		a := make([]float64, k)
		b := make([]float64, k)
		for i := range a {
			a[i] = r.Float64() * 100
			b[i] = r.Float64() * 100
		}
		sab, sba := Similarity(a, b), Similarity(b, a)
		if math.Abs(sab-sba) > 1e-12 {
			return false
		}
		// Normalized similarity of same-length vectors with non-negative
		// entries is within [−1, 1]; each |aᵢ−bᵢ| ≤ max.
		return sab <= 1+1e-12 && sab >= -1-1e-12
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSimilarityLengthPenalty(t *testing.T) {
	a := []float64{5, 5, 5, 5}
	b := []float64{5, 5}
	s := Similarity(a, b)
	// Identical prefix, but only half the length: penalty 2/4.
	if math.Abs(s-0.5) > 1e-12 {
		t.Fatalf("length-mismatch similarity = %v, want 0.5", s)
	}
}

// --- history table ---

func TestHistoryInsertLookup(t *testing.T) {
	tb := NewHistoryTable(10)
	e := &Entry{Ready: []float64{0, 0}, ETC: []float64{1, 2}, SD: []float64{0.7}, Best: ga.Chromosome{1}}
	tb.Insert(e)
	matches := tb.Lookup([]float64{0, 0}, []float64{1, 2}, []float64{0.7}, 0.8, 10)
	if len(matches) != 1 || matches[0].Similarity < 0.999 {
		t.Fatalf("exact entry not found: %+v", matches)
	}
}

func TestHistoryThreshold(t *testing.T) {
	tb := NewHistoryTable(10)
	tb.Insert(&Entry{Ready: []float64{100}, ETC: []float64{100}, SD: []float64{0.9}, Best: ga.Chromosome{0}})
	matches := tb.Lookup([]float64{1}, []float64{1}, []float64{0.1}, 0.8, 10)
	if len(matches) != 0 {
		t.Fatalf("dissimilar entry matched: %+v", matches)
	}
}

func TestHistoryLRUEviction(t *testing.T) {
	tb := NewHistoryTable(2)
	mk := func(v float64) *Entry {
		return &Entry{Ready: []float64{v}, ETC: []float64{v}, SD: []float64{0.5}, Best: ga.Chromosome{0}}
	}
	tb.Insert(mk(1))
	tb.Insert(mk(2))
	// Touch entry 1 so entry 2 becomes the LRU victim.
	if got := tb.Lookup([]float64{1}, []float64{1}, []float64{0.5}, 0.99, 10); len(got) != 1 {
		t.Fatalf("expected to touch entry 1, got %d matches", len(got))
	}
	tb.Insert(mk(3)) // must evict entry 2
	if got := tb.Lookup([]float64{1}, []float64{1}, []float64{0.5}, 0.99, 10); len(got) != 1 {
		t.Fatal("entry 1 was wrongly evicted")
	}
	if got := tb.Lookup([]float64{2}, []float64{2}, []float64{0.5}, 0.99, 10); len(got) != 0 {
		t.Fatal("entry 2 should have been evicted")
	}
	if tb.Len() != 2 {
		t.Fatalf("table len %d, want capacity 2", tb.Len())
	}
}

// TestHistoryLookupMatchesReference pins the optimized Lookup path
// (cached maxima, ETC early-exit) to the reference entrySimilarity: every
// entry at or above the threshold is returned with the bit-identical
// score, and nothing below it leaks through — under both similarity
// variants and with mismatched vector lengths in the mix.
func TestHistoryLookupMatchesReference(t *testing.T) {
	for _, eq2 := range []bool{false, true} {
		r := rng.New(411)
		tb := NewHistoryTable(64)
		tb.UseEq2Literal = eq2
		vec := func(n int, scale float64) []float64 {
			v := make([]float64, n)
			for i := range v {
				v[i] = r.Float64() * scale
			}
			return v
		}
		for i := 0; i < 40; i++ {
			tb.Insert(&Entry{
				Ready: vec(4+r.Intn(3), 10),
				ETC:   vec(12+r.Intn(5), 100),
				SD:    vec(4+r.Intn(3), 1),
				Best:  ga.Chromosome{0},
			})
		}
		for trial := 0; trial < 25; trial++ {
			ready, etc, sd := vec(5, 10), vec(14, 100), vec(5, 1)
			threshold := r.Float64()*1.6 - 0.4
			want := map[*Entry]float64{}
			for _, e := range tb.entries {
				if s := tb.entrySimilarity(e, ready, etc, sd); s >= threshold {
					want[e] = s
				}
			}
			got := tb.Lookup(ready, etc, sd, threshold, 0)
			if len(got) != len(want) {
				t.Fatalf("eq2=%v threshold=%v: Lookup returned %d matches, reference %d",
					eq2, threshold, len(got), len(want))
			}
			for _, m := range got {
				if s, ok := want[m.Entry]; !ok || s != m.Similarity {
					t.Fatalf("eq2=%v: match score %v, reference %v (found=%v)",
						eq2, m.Similarity, s, ok)
				}
			}
		}
	}
}

func TestHistoryMaxSeedsAndOrdering(t *testing.T) {
	tb := NewHistoryTable(10)
	for _, v := range []float64{10, 1, 5} {
		tb.Insert(&Entry{Ready: []float64{v}, ETC: []float64{v}, SD: []float64{0.5}, Best: ga.Chromosome{0}})
	}
	matches := tb.Lookup([]float64{1}, []float64{1}, []float64{0.5}, 0.0, 2)
	if len(matches) != 2 {
		t.Fatalf("maxSeeds not applied: %d", len(matches))
	}
	if matches[0].Similarity < matches[1].Similarity {
		t.Fatal("matches not sorted by similarity descending")
	}
}

func TestHistoryHitRate(t *testing.T) {
	tb := NewHistoryTable(5)
	tb.Insert(&Entry{Ready: []float64{1}, ETC: []float64{1}, SD: []float64{0.5}, Best: ga.Chromosome{0}})
	tb.Lookup([]float64{1}, []float64{1}, []float64{0.5}, 0.9, 5)   // hit
	tb.Lookup([]float64{99}, []float64{99}, []float64{0.1}, 0.9, 5) // miss
	if hr := tb.HitRate(); math.Abs(hr-0.5) > 1e-12 {
		t.Fatalf("hit rate %v, want 0.5", hr)
	}
}

// --- STGA scheduler ---

func testSites() []*grid.Site {
	return []*grid.Site{
		{ID: 0, Speed: 10, Nodes: 1, SecurityLevel: 0.97},
		{ID: 1, Speed: 20, Nodes: 1, SecurityLevel: 0.65},
		{ID: 2, Speed: 40, Nodes: 1, SecurityLevel: 0.45},
	}
}

func testBatch(n int, seed uint64) []*grid.Job {
	r := rng.New(seed)
	jobs := make([]*grid.Job, n)
	for i := range jobs {
		jobs[i] = &grid.Job{
			ID: i, Workload: 100 + r.Float64()*900, Nodes: 1,
			SecurityDemand: r.Uniform(0.6, 0.9),
		}
	}
	return jobs
}

func freshState(sites []*grid.Site) *sched.State {
	return &sched.State{Now: 0, Sites: sites, Ready: make([]float64, len(sites))}
}

func fastConfig() Config {
	cfg := DefaultConfig()
	cfg.GA.PopulationSize = 40
	cfg.GA.Generations = 30
	return cfg
}

func TestSTGAContract(t *testing.T) {
	sites := testSites()
	batch := testBatch(15, 7)
	s := New(fastConfig(), rng.New(1))
	as := s.Schedule(batch, freshState(sites))
	if err := sched.ValidateAssignments(batch, as, len(sites)); err != nil {
		t.Fatal(err)
	}
	if len(s.LastTrajectory) != 31 {
		t.Fatalf("trajectory length %d, want generations+1", len(s.LastTrajectory))
	}
}

func TestSTGABeatsOrMatchesMinMinOnBatchMakespan(t *testing.T) {
	// Under the same admission policy, the heuristic-seeded elitist GA
	// can only improve on Min-Min's fitness. The fitness carries a small
	// load-efficiency term, so allow the raw span a few percent of slack.
	sites := testSites()
	st := freshState(sites)
	wins := 0
	const trials = 10
	for i := 0; i < trials; i++ {
		batch := testBatch(20, uint64(100+i))
		cfg := fastConfig()
		mm := heuristics.NewMinMin(cfg.Policy).Schedule(batch, st)
		s := New(cfg, rng.New(uint64(i)))
		as := s.Schedule(batch, st)
		if batchMakespan(as, st) <= batchMakespan(mm, st)*1.05 {
			wins++
		}
	}
	if wins < trials-1 {
		t.Fatalf("STGA matched/beat Min-Min only %d/%d times", wins, trials)
	}
}

func batchMakespan(as []sched.Assignment, st *sched.State) float64 {
	ready := append([]float64(nil), st.Ready...)
	for _, a := range as {
		start := ready[a.Site]
		if st.Now > start {
			start = st.Now
		}
		ready[a.Site] = start + st.Sites[a.Site].ExecTime(a.Job)
	}
	span := 0.0
	for _, r := range ready {
		if r > span {
			span = r
		}
	}
	return span
}

func TestSTGARecordsHistory(t *testing.T) {
	s := New(fastConfig(), rng.New(2))
	sites := testSites()
	if s.Table().Len() != 0 {
		t.Fatal("table should start empty")
	}
	s.Schedule(testBatch(10, 1), freshState(sites))
	if s.Table().Len() != 1 {
		t.Fatalf("table len %d after one batch, want 1", s.Table().Len())
	}
}

func TestSTGAWarmStartBeatsColdStartAtGenZero(t *testing.T) {
	// Schedule the same batch twice: the second run must start from a
	// far better initial population thanks to the history seed (the
	// Fig. 5 phenomenon).
	sites := testSites()
	batch := testBatch(25, 3)
	st := freshState(sites)
	s := New(fastConfig(), rng.New(3))
	s.Schedule(batch, st)
	firstStart := s.LastTrajectory[0]
	firstEnd := s.LastTrajectory[len(s.LastTrajectory)-1]
	s.Schedule(batch, st)
	secondStart := s.LastTrajectory[0]
	if secondStart > firstEnd*1.001 {
		t.Fatalf("warm start %v should begin near prior best %v (cold start was %v)",
			secondStart, firstEnd, firstStart)
	}
}

func TestConvGAIgnoresHistory(t *testing.T) {
	cfg := fastConfig()
	cfg.DisableHistory = true
	s := New(cfg, rng.New(4))
	sites := testSites()
	s.Schedule(testBatch(10, 1), freshState(sites))
	if s.Table().Len() != 0 {
		t.Fatal("cold-start GA must not populate the table")
	}
	if s.Name() != "GA (cold start)" {
		t.Fatalf("name = %q", s.Name())
	}
}

func TestSTGAEmptyBatch(t *testing.T) {
	s := New(fastConfig(), rng.New(5))
	if got := s.Schedule(nil, freshState(testSites())); got != nil {
		t.Fatal("empty batch must return nil")
	}
}

func TestSTGAMustBeSafeRestriction(t *testing.T) {
	sites := testSites() // only site 0 (SL .97) is strictly safe for SD .9
	batch := testBatch(8, 9)
	for _, j := range batch {
		j.SecurityDemand = 0.9
		j.MustBeSafe = true
	}
	s := New(fastConfig(), rng.New(6))
	as := s.Schedule(batch, freshState(sites))
	for _, a := range as {
		if a.Site != 0 {
			t.Fatalf("must-be-safe job placed on unsafe site %d", a.Site)
		}
	}
}

func TestSTGADeterministic(t *testing.T) {
	sites := testSites()
	batch := testBatch(12, 11)
	a := New(fastConfig(), rng.New(7)).Schedule(batch, freshState(sites))
	b := New(fastConfig(), rng.New(7)).Schedule(batch, freshState(sites))
	for i := range a {
		if a[i].Site != b[i].Site {
			t.Fatal("STGA not deterministic under equal seeds")
		}
	}
}

func TestTrainPopulatesTable(t *testing.T) {
	s := New(fastConfig(), rng.New(8))
	jobs := testBatch(100, 13)
	s.Train(jobs, testSites(), 20)
	if s.Table().Len() != 5 {
		t.Fatalf("training with 100 jobs / batch 20 should insert 5 entries, got %d", s.Table().Len())
	}
}

func TestTrainNoopWhenDisabled(t *testing.T) {
	cfg := fastConfig()
	cfg.DisableHistory = true
	s := New(cfg, rng.New(9))
	s.Train(testBatch(50, 1), testSites(), 10)
	if s.Table().Len() != 0 {
		t.Fatal("training must be a no-op for the cold-start GA")
	}
}

func TestMakespanFitnessMatchesSimulation(t *testing.T) {
	sites := testSites()
	batch := testBatch(10, 17)
	st := freshState(sites)
	st.Ready[0] = 50
	etc := grid.ETCMatrix(batch, sites)
	fit := makespanFitness(len(sites), fitnessBase(st), etc, 0.1)
	c := make(ga.Chromosome, len(batch))
	r := rng.New(18)
	for i := range c {
		c[i] = r.Intn(len(sites))
	}
	as := make([]sched.Assignment, len(batch))
	var totalLoad float64
	for i, j := range batch {
		as[i] = sched.Assignment{Job: j, Site: c[i]}
		totalLoad += sites[c[i]].ExecTime(j)
	}
	want := batchMakespan(as, st) + 0.1*totalLoad/float64(len(sites))
	if got := fit(c); math.Abs(got-want) > 1e-9 {
		t.Fatalf("fitness %v != makespan + load term %v", got, want)
	}
}

func BenchmarkHistoryLookup(b *testing.B) {
	tb := NewHistoryTable(150)
	r := rng.New(1)
	for i := 0; i < 150; i++ {
		ready := make([]float64, 20)
		etc := make([]float64, 50*20)
		sd := make([]float64, 50)
		for k := range ready {
			ready[k] = r.Float64() * 1000
		}
		for k := range etc {
			etc[k] = r.Float64() * 1000
		}
		for k := range sd {
			sd[k] = r.Uniform(0.6, 0.9)
		}
		tb.Insert(&Entry{Ready: ready, ETC: etc, SD: sd, Best: make(ga.Chromosome, 50)})
	}
	probeR := make([]float64, 20)
	probeE := make([]float64, 50*20)
	probeS := make([]float64, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.Lookup(probeR, probeE, probeS, 0.8, 100)
	}
}

func BenchmarkSTGABatch(b *testing.B) {
	sites := testSites()
	batch := testBatch(50, 1)
	st := freshState(sites)
	s := New(DefaultConfig(), rng.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Schedule(batch, st)
	}
}
