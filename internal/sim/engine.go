package sim

import (
	"errors"
	"fmt"
	"math"
)

// Event is a scheduled occurrence. Implementations carry their own payload;
// the engine only needs Execute.
type Event interface {
	// Execute runs the event's effect at its scheduled time.
	Execute(e *Engine)
}

// EventFunc adapts a plain function to the Event interface.
type EventFunc func(e *Engine)

// Execute calls f.
func (f EventFunc) Execute(e *Engine) { f(e) }

// ErrNegativeDelay is returned (via panic recovery in tests) when an event
// is scheduled in the past.
var ErrNegativeDelay = errors.New("sim: event scheduled before current time")

// Engine is the simulation core. The zero value is not usable; call
// NewEngine.
type Engine struct {
	queue    eventQueue
	now      float64
	seq      uint64
	executed uint64
	// MaxEvents aborts a run after this many events as a runaway guard.
	// Zero means no limit.
	MaxEvents uint64
	stopped   bool
	err       error
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	e := &Engine{}
	e.queue.items = make([]*queued, 0, 1024)
	return e
}

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Executed returns the number of events executed so far.
func (e *Engine) Executed() uint64 { return e.executed }

// Pending returns the number of events waiting in the queue.
func (e *Engine) Pending() int { return e.queue.Len() }

// LastSeq returns the sequence number Schedule assigned most recently.
// Equal-timestamp events execute in sequence order, so a caller that
// needs to re-create a pending event after a restore records this and
// re-schedules in recorded order (see sched's engine snapshot).
func (e *Engine) LastSeq() uint64 { return e.seq }

// RestoreClock positions a fresh engine at a snapshot's clock and
// executed-event count. It is the restore-side counterpart of Now and
// Executed: events re-scheduled afterwards continue from exactly where
// the snapshotted run stood. Only an engine with an empty queue may be
// repositioned, and only forward.
func (e *Engine) RestoreClock(now float64, executed uint64) error {
	if e.queue.Len() != 0 {
		return fmt.Errorf("sim: RestoreClock with %d events queued", e.queue.Len())
	}
	if math.IsNaN(now) || now < e.now {
		return fmt.Errorf("sim: RestoreClock to t=%v behind now=%v", now, e.now)
	}
	e.now = now
	e.executed = executed
	return nil
}

// Schedule enqueues ev to run at absolute time t. Scheduling in the past
// (t < Now, beyond a tiny epsilon for float accumulation) is a programming
// error and panics: silently reordering time would corrupt every metric.
func (e *Engine) Schedule(t float64, ev Event) {
	if math.IsNaN(t) {
		panic("sim: event scheduled at NaN time")
	}
	if t < e.now {
		panic(fmt.Errorf("%w: t=%v now=%v", ErrNegativeDelay, t, e.now))
	}
	e.seq++
	e.queue.Push(&queued{at: t, seq: e.seq, ev: ev})
}

// After enqueues ev to run delay seconds from now.
func (e *Engine) After(delay float64, ev Event) {
	if delay < 0 {
		panic(fmt.Errorf("%w: delay=%v", ErrNegativeDelay, delay))
	}
	e.Schedule(e.now+delay, ev)
}

// Stop ends the run loop after the current event completes. Remaining
// events stay in the queue (Pending reports them).
func (e *Engine) Stop() { e.stopped = true }

// Fail ends the run loop and records err, which Run returns.
func (e *Engine) Fail(err error) {
	e.err = err
	e.stopped = true
}

// Run executes events in timestamp order until the queue is empty, Stop or
// Fail is called, or MaxEvents is exceeded.
func (e *Engine) Run() error {
	e.stopped = false
	for !e.stopped && e.queue.Len() > 0 {
		q := e.queue.Pop()
		e.now = q.at
		e.executed++
		if e.MaxEvents > 0 && e.executed > e.MaxEvents {
			return fmt.Errorf("sim: exceeded MaxEvents=%d at t=%v", e.MaxEvents, e.now)
		}
		q.ev.Execute(e)
	}
	return e.err
}

// RunUntil executes events with timestamps <= deadline, then stops with the
// clock advanced to deadline (or the last event time if the queue drained
// earlier). Events after the deadline remain queued.
func (e *Engine) RunUntil(deadline float64) error {
	e.stopped = false
	for !e.stopped && e.queue.Len() > 0 {
		if e.queue.Peek().at > deadline {
			break
		}
		q := e.queue.Pop()
		e.now = q.at
		e.executed++
		if e.MaxEvents > 0 && e.executed > e.MaxEvents {
			return fmt.Errorf("sim: exceeded MaxEvents=%d at t=%v", e.MaxEvents, e.now)
		}
		q.ev.Execute(e)
	}
	if e.now < deadline {
		e.now = deadline
	}
	return e.err
}
