package sim

import (
	"errors"
	"math"
	"sort"
	"testing"
	"testing/quick"

	"trustgrid/internal/rng"
)

func TestRunExecutesInTimeOrder(t *testing.T) {
	e := NewEngine()
	var order []float64
	record := func(e *Engine) { order = append(order, e.Now()) }
	for _, at := range []float64{5, 1, 3, 2, 4} {
		e.Schedule(at, EventFunc(record))
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !sort.Float64sAreSorted(order) {
		t.Fatalf("events out of order: %v", order)
	}
	if len(order) != 5 {
		t.Fatalf("executed %d events, want 5", len(order))
	}
}

func TestTiesBrokenByInsertionOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(7.0, EventFunc(func(*Engine) { order = append(order, i) }))
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("tie order violated: %v", order)
		}
	}
}

func TestEventsCanScheduleEvents(t *testing.T) {
	e := NewEngine()
	count := 0
	var step func(e *Engine)
	step = func(e *Engine) {
		count++
		if count < 100 {
			e.After(1.0, EventFunc(step))
		}
	}
	e.Schedule(0, EventFunc(step))
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if count != 100 {
		t.Fatalf("count = %d, want 100", count)
	}
	if e.Now() != 99 {
		t.Fatalf("clock = %v, want 99", e.Now())
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, EventFunc(func(e *Engine) {
		defer func() {
			if r := recover(); r == nil {
				t.Error("scheduling in the past should panic")
			}
		}()
		e.Schedule(5, EventFunc(func(*Engine) {}))
	}))
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleNaNPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NaN time should panic")
		}
	}()
	NewEngine().Schedule(math.NaN(), EventFunc(func(*Engine) {}))
}

func TestAfterNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay should panic")
		}
	}()
	NewEngine().After(-1, EventFunc(func(*Engine) {}))
}

func TestStop(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 0; i < 10; i++ {
		e.Schedule(float64(i), EventFunc(func(e *Engine) {
			count++
			if count == 3 {
				e.Stop()
			}
		}))
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	if e.Pending() != 7 {
		t.Fatalf("pending = %d, want 7", e.Pending())
	}
}

func TestFail(t *testing.T) {
	e := NewEngine()
	boom := errors.New("boom")
	e.Schedule(1, EventFunc(func(e *Engine) { e.Fail(boom) }))
	e.Schedule(2, EventFunc(func(*Engine) { t.Error("event after Fail executed") }))
	if err := e.Run(); !errors.Is(err, boom) {
		t.Fatalf("Run returned %v, want boom", err)
	}
}

func TestMaxEvents(t *testing.T) {
	e := NewEngine()
	e.MaxEvents = 50
	var step func(e *Engine)
	step = func(e *Engine) { e.After(1, EventFunc(step)) }
	e.Schedule(0, EventFunc(step))
	if err := e.Run(); err == nil {
		t.Fatal("expected MaxEvents error")
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []float64
	for _, at := range []float64{1, 2, 3, 10, 20} {
		e.Schedule(at, EventFunc(func(e *Engine) { fired = append(fired, e.Now()) }))
	}
	if err := e.RunUntil(5); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 3 {
		t.Fatalf("fired %v, want 3 events", fired)
	}
	if e.Now() != 5 {
		t.Fatalf("clock = %v, want 5", e.Now())
	}
	if e.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", e.Pending())
	}
	// Resume to completion.
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 5 {
		t.Fatalf("after resume fired %v, want 5 events", fired)
	}
}

func TestRunUntilEmptyQueueAdvancesClock(t *testing.T) {
	e := NewEngine()
	if err := e.RunUntil(42); err != nil {
		t.Fatal(err)
	}
	if e.Now() != 42 {
		t.Fatalf("clock = %v, want 42", e.Now())
	}
}

// Property: for any random set of timestamps, Run visits them in sorted
// order and executes exactly len(ts) events.
func TestQueueOrderingProperty(t *testing.T) {
	r := rng.New(99)
	check := func(n uint16) bool {
		count := int(n%200) + 1
		e := NewEngine()
		ts := make([]float64, count)
		var got []float64
		for i := range ts {
			ts[i] = r.Float64() * 1000
			e.Schedule(ts[i], EventFunc(func(e *Engine) { got = append(got, e.Now()) }))
		}
		if err := e.Run(); err != nil {
			return false
		}
		sort.Float64s(ts)
		if len(got) != len(ts) {
			return false
		}
		for i := range ts {
			if got[i] != ts[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestHeapStress(t *testing.T) {
	// Interleave pushes and pops; verify global ordering with a reference.
	r := rng.New(123)
	var q eventQueue
	var popped []float64
	pushed := 0
	for i := 0; i < 5000; i++ {
		if q.Len() == 0 || r.Float64() < 0.6 {
			at := r.Float64() * 100
			// Monotone floor: heap itself doesn't require monotone input.
			q.Push(&queued{at: at, seq: uint64(pushed)})
			pushed++
		} else {
			popped = append(popped, q.Pop().at)
		}
	}
	for q.Len() > 0 {
		popped = append(popped, q.Pop().at)
	}
	if len(popped) != pushed {
		t.Fatalf("popped %d, pushed %d", len(popped), pushed)
	}
}

func BenchmarkSchedulePop(b *testing.B) {
	r := rng.New(1)
	e := NewEngine()
	noop := EventFunc(func(*Engine) {})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(e.Now()+r.Float64()*10, noop)
		if e.Pending() > 1000 {
			_ = e.RunUntil(e.Now() + 1)
		}
	}
}
