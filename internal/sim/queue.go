package sim

// queued is an event with its scheduling metadata.
type queued struct {
	at  float64 // absolute simulation time
	seq uint64  // tie-breaker: insertion order
	ev  Event
}

// eventQueue is a binary min-heap ordered by (at, seq). We hand-roll the
// heap rather than use container/heap to avoid the interface boxing on
// every sift, which is measurable at simulator scale.
type eventQueue struct {
	items []*queued
}

func (q *eventQueue) Len() int { return len(q.items) }

func (q *eventQueue) less(i, j int) bool {
	a, b := q.items[i], q.items[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Push inserts an item and restores the heap invariant.
func (q *eventQueue) Push(item *queued) {
	q.items = append(q.items, item)
	i := len(q.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.items[i], q.items[parent] = q.items[parent], q.items[i]
		i = parent
	}
}

// Peek returns the earliest item without removing it. It panics on an
// empty queue; callers check Len first.
func (q *eventQueue) Peek() *queued {
	return q.items[0]
}

// Pop removes and returns the earliest item.
func (q *eventQueue) Pop() *queued {
	top := q.items[0]
	last := len(q.items) - 1
	q.items[0] = q.items[last]
	q.items[last] = nil // release for GC
	q.items = q.items[:last]
	q.siftDown(0)
	return top
}

func (q *eventQueue) siftDown(i int) {
	n := len(q.items)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		smallest := left
		if right := left + 1; right < n && q.less(right, left) {
			smallest = right
		}
		if !q.less(smallest, i) {
			return
		}
		q.items[i], q.items[smallest] = q.items[smallest], q.items[i]
		i = smallest
	}
}
