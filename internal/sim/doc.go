// Package sim implements the discrete-event simulation engine that every
// trustgrid experiment runs on.
//
// The engine is a classic event-list simulator: a priority queue of events
// ordered by (time, sequence), a virtual clock, and a run loop. Handlers
// may schedule further events at or after the current time. Determinism is
// guaranteed: ties in time are broken by insertion order, so a simulation
// driven by deterministic handlers and deterministic random streams always
// produces byte-identical results.
//
// DESIGN.md §1.1 inventory row: discrete-event engine: event list ordered by (time, insertion sequence) — fully deterministic, with a clock-driven online mode fed by an arrival channel (§6.3).
package sim
