package sim

// Arrival is an externally produced event: run Ev at virtual time At.
// Arrivals are how the world outside the simulation — an HTTP handler, a
// trace replayer, a test — injects work into a running engine.
type Arrival struct {
	At float64
	Ev Event
}

// Online drives an Engine in incremental, clock-driven steps fed by an
// arrival channel instead of a fixed up-front event list. Producers on
// any goroutine send Arrivals with Inject; a single consumer goroutine
// owns the engine and advances the clock with AdvanceTo (or runs it dry
// with RunAll). Ingested arrivals whose timestamp has already passed are
// clamped to the current clock — from the simulation's point of view
// they arrive "now" — which is the only place wall-clock nondeterminism
// can enter; everything at or after the clamped timestamp is ordinary
// deterministic event execution (DESIGN.md §6.4).
type Online struct {
	eng *Engine
	in  chan Arrival
}

// DefaultArrivalBuffer is the arrival channel depth used when NewOnline
// is given a non-positive buffer size. A full channel blocks producers,
// which is the backpressure a service wants under overload.
const DefaultArrivalBuffer = 8192

// NewOnline wraps eng for incremental execution. The engine must not be
// driven directly (Run/RunUntil) while the Online wrapper is in use.
func NewOnline(eng *Engine, buffer int) *Online {
	if buffer <= 0 {
		buffer = DefaultArrivalBuffer
	}
	return &Online{eng: eng, in: make(chan Arrival, buffer)}
}

// Engine returns the wrapped engine. Consumer goroutine only.
func (o *Online) Engine() *Engine { return o.eng }

// Inject sends one arrival. Safe to call from any goroutine; blocks when
// the channel buffer is full until the consumer drains it.
func (o *Online) Inject(at float64, ev Event) {
	o.in <- Arrival{At: at, Ev: ev}
}

// InjectOr is Inject with an abort signal: it reports false (dropping
// the arrival) if done closes before the buffer accepts it. Producers
// that must not wedge when the consumer is gone use this.
func (o *Online) InjectOr(done <-chan struct{}, at float64, ev Event) bool {
	select {
	case o.in <- Arrival{At: at, Ev: ev}:
		return true
	case <-done:
		return false
	}
}

// Backlog returns the number of arrivals sitting in the channel, not yet
// transferred to the engine's event queue.
func (o *Online) Backlog() int { return len(o.in) }

// drain moves every currently buffered arrival onto the engine's event
// queue, clamping past timestamps to the current clock, and returns how
// many it moved. Consumer goroutine only.
func (o *Online) drain() int {
	n := 0
	for {
		select {
		case a := <-o.in:
			t := a.At
			if t < o.eng.Now() {
				t = o.eng.Now()
			}
			o.eng.Schedule(t, a.Ev)
			n++
		default:
			return n
		}
	}
}

// AdvanceTo ingests all buffered arrivals and executes events up to and
// including virtual time t, leaving the clock at t. Arrivals injected
// concurrently during execution stay buffered until the next call.
// Consumer goroutine only.
func (o *Online) AdvanceTo(t float64) error {
	o.drain()
	return o.eng.RunUntil(t)
}

// RunAll alternates between ingesting buffered arrivals and running the
// engine until both the channel and the event queue are empty. It is the
// incremental equivalent of Engine.Run. Consumer goroutine only.
func (o *Online) RunAll() error {
	for {
		o.drain()
		if o.eng.Pending() == 0 {
			return nil
		}
		if err := o.eng.Run(); err != nil {
			return err
		}
	}
}
