package ga

import (
	"math"
	"testing"
	"testing/quick"

	"trustgrid/internal/rng"
)

// onesProblem: fitness counts non-zero genes; optimum is all zeros.
func onesProblem(length, numValues int) *Problem {
	allowed := make([][]int, length)
	for i := range allowed {
		vals := make([]int, numValues)
		for v := range vals {
			vals[v] = v
		}
		allowed[i] = vals
	}
	return &Problem{
		Length:  length,
		Allowed: allowed,
		Fitness: func(c Chromosome) float64 {
			n := 0.0
			for _, g := range c {
				if g != 0 {
					n++
				}
			}
			return n
		},
	}
}

func TestRunFindsEasyOptimum(t *testing.T) {
	p := onesProblem(12, 3)
	cfg := DefaultConfig()
	cfg.Generations = 150
	cfg.MutationProb = 0.3 // small problem: strong mutation finds optimum
	res, err := Run(p, cfg, nil, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.BestFitness > 1 {
		t.Fatalf("GA best fitness %v, want <= 1 on trivial problem", res.BestFitness)
	}
}

func TestTrajectoryMonotoneWithElitism(t *testing.T) {
	p := onesProblem(20, 4)
	cfg := DefaultConfig()
	cfg.Generations = 60
	res, err := Run(p, cfg, nil, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trajectory) != 61 {
		t.Fatalf("trajectory length %d, want generations+1", len(res.Trajectory))
	}
	for i := 1; i < len(res.Trajectory); i++ {
		if res.Trajectory[i] > res.Trajectory[i-1] {
			t.Fatalf("best fitness regressed at generation %d: %v -> %v",
				i, res.Trajectory[i-1], res.Trajectory[i])
		}
	}
}

func TestSeedsImproveStart(t *testing.T) {
	p := onesProblem(30, 5)
	cfg := DefaultConfig()
	cfg.Generations = 0 // only the initial population matters

	cold, err := Run(p, cfg, nil, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	optimal := make(Chromosome, 30) // all zeros
	warm, err := Run(p, cfg, []Chromosome{optimal}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if warm.BestFitness != 0 {
		t.Fatalf("seeded run lost the seed: best %v", warm.BestFitness)
	}
	if cold.BestFitness <= warm.BestFitness {
		t.Fatalf("cold start (%v) should start worse than seeded (%v)",
			cold.BestFitness, warm.BestFitness)
	}
}

func TestSeedLengthAdaptation(t *testing.T) {
	p := onesProblem(10, 3)
	cfg := DefaultConfig()
	cfg.Generations = 0
	short := Chromosome{0, 0, 0} // tiles to length 10
	long := make(Chromosome, 25) // truncates
	res, err := Run(p, cfg, []Chromosome{short, long}, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if res.BestFitness != 0 {
		t.Fatalf("adapted all-zero seeds should be optimal, got %v", res.BestFitness)
	}
}

func TestRepairClampsIllegalGenes(t *testing.T) {
	p := onesProblem(5, 2) // allowed {0,1}
	c := Chromosome{7, -1, 0, 1, 99}
	p.Repair(c, rng.New(5))
	for i, g := range c {
		if g != 0 && g != 1 {
			t.Fatalf("gene %d still illegal after repair: %d", i, g)
		}
	}
	if c[2] != 0 || c[3] != 1 {
		t.Fatal("repair must not disturb legal genes")
	}
}

// Property: every chromosome the GA ever returns respects the per-gene
// allowed sets, even with hostile seeds.
func TestValidityInvariantProperty(t *testing.T) {
	r := rng.New(6)
	check := func(a, b uint8) bool {
		length := int(a%15) + 2
		numVals := int(b%4) + 2
		p := onesProblem(length, numVals)
		// Restrict some genes to odd subsets to stress Repair and mutate.
		for i := range p.Allowed {
			if i%3 == 0 {
				p.Allowed[i] = []int{numVals - 1}
			}
		}
		seed := make(Chromosome, length)
		for i := range seed {
			seed[i] = 1000 // illegal everywhere
		}
		cfg := Config{PopulationSize: 20, Generations: 10,
			CrossoverProb: 0.9, MutationProb: 0.5, Elitism: true}
		res, err := Run(p, cfg, []Chromosome{seed}, r.Derive("q"))
		if err != nil {
			return false
		}
		for i, g := range res.Best {
			ok := false
			for _, v := range p.Allowed[i] {
				if g == v {
					ok = true
				}
			}
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{PopulationSize: 1, Generations: 1, CrossoverProb: 0.5, MutationProb: 0.5},
		{PopulationSize: 10, Generations: -1, CrossoverProb: 0.5, MutationProb: 0.5},
		{PopulationSize: 10, Generations: 1, CrossoverProb: 1.5, MutationProb: 0.5},
		{PopulationSize: 10, Generations: 1, CrossoverProb: 0.5, MutationProb: -0.1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d should be invalid", i)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestProblemValidate(t *testing.T) {
	p := &Problem{Length: 2, Allowed: [][]int{{0}, {}}, Fitness: func(Chromosome) float64 { return 0 }}
	if err := p.Validate(); err == nil {
		t.Fatal("empty allowed set should fail")
	}
	p2 := &Problem{Length: 2, Allowed: [][]int{{0}}, Fitness: func(Chromosome) float64 { return 0 }}
	if err := p2.Validate(); err == nil {
		t.Fatal("mismatched allowed length should fail")
	}
	p3 := onesProblem(3, 2)
	p3.Fitness = nil
	if err := p3.Validate(); err == nil {
		t.Fatal("nil fitness should fail")
	}
}

func TestDeterministicRuns(t *testing.T) {
	p := onesProblem(15, 4)
	cfg := DefaultConfig()
	cfg.Generations = 20
	a, _ := Run(p, cfg, nil, rng.New(42))
	b, _ := Run(p, cfg, nil, rng.New(42))
	if a.BestFitness != b.BestFitness {
		t.Fatal("GA runs with equal seeds diverged")
	}
	for i := range a.Best {
		if a.Best[i] != b.Best[i] {
			t.Fatal("GA best chromosomes with equal seeds diverged")
		}
	}
}

func TestCrossoverPreservesLengthAndGenes(t *testing.T) {
	r := rng.New(7)
	a := Chromosome{1, 2, 3, 4, 5}
	b := Chromosome{6, 7, 8, 9, 10}
	crossover(a, b, nil, nil, nil, r)
	if len(a) != 5 || len(b) != 5 {
		t.Fatal("crossover changed length")
	}
	// Multiset union preserved.
	sum := 0
	for i := range a {
		sum += a[i] + b[i]
	}
	if sum != 55 {
		t.Fatalf("crossover lost genes: %v %v", a, b)
	}
}

func TestCrossoverLengthOneNoop(t *testing.T) {
	r := rng.New(8)
	a, b := Chromosome{1}, Chromosome{2}
	crossover(a, b, nil, nil, nil, r)
	if a[0] != 1 || b[0] != 2 {
		t.Fatal("length-1 crossover must be a no-op")
	}
}

func TestRouletteFavorsFit(t *testing.T) {
	r := rng.New(9)
	pop := []Chromosome{{0}, {1}}
	fit := []float64{1, 100} // chromosome 0 is 100× fitter
	// Run selection over a large sample.
	big := make([]Chromosome, 1000)
	bigFit := make([]float64, 1000)
	for i := range big {
		big[i] = pop[i%2]
		bigFit[i] = fit[i%2]
	}
	picks := make([]int, 1000)
	weights := make([]float64, 1000)
	cum := make([]float64, 1000)
	selectRoulette(bigFit, picks, weights, cum, r)
	zeros := 0
	for _, src := range picks {
		if big[src][0] == 0 {
			zeros++
		}
	}
	if zeros < 850 {
		t.Fatalf("roulette picked the fit individual only %d/1000 times", zeros)
	}
}

func TestInfiniteFitnessHandled(t *testing.T) {
	p := onesProblem(4, 2)
	orig := p.Fitness
	p.Fitness = func(c Chromosome) float64 {
		if c[0] == 1 {
			return math.Inf(1)
		}
		return orig(c)
	}
	res, err := Run(p, Config{PopulationSize: 30, Generations: 20,
		CrossoverProb: 0.8, MutationProb: 0.2, Elitism: true}, nil, rng.New(10))
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(res.BestFitness, 1) || math.IsNaN(res.BestFitness) {
		t.Fatalf("GA returned non-finite best fitness %v", res.BestFitness)
	}
}

func TestZeroGenerations(t *testing.T) {
	p := onesProblem(5, 2)
	res, err := Run(p, Config{PopulationSize: 10, Generations: 0,
		CrossoverProb: 0.8, MutationProb: 0.01, Elitism: true}, nil, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trajectory) != 1 {
		t.Fatalf("trajectory length %d, want 1", len(res.Trajectory))
	}
	if res.Best == nil {
		t.Fatal("zero-generation run must still report the initial best")
	}
}

func BenchmarkGAGeneration(b *testing.B) {
	// One generation on a realistic batch: 50 jobs × 20 sites, pop 200.
	p := onesProblem(50, 20)
	cfg := DefaultConfig()
	cfg.Generations = 1
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(p, cfg, nil, r); err != nil {
			b.Fatal(err)
		}
	}
}
