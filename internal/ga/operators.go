package ga

import (
	"fmt"

	"trustgrid/internal/rng"
)

// SelectionMethod picks how parents are sampled each generation.
type SelectionMethod int

const (
	// RouletteSelection is the paper's value-based roulette wheel (with
	// window scaling; see selectRoulette).
	RouletteSelection SelectionMethod = iota
	// TournamentSelection samples each slot as the best of K uniformly
	// random individuals (K = TournamentSize).
	TournamentSelection
	// RankSelection weights individuals linearly by fitness rank,
	// independent of the fitness scale.
	RankSelection
)

// String names the method.
func (m SelectionMethod) String() string {
	switch m {
	case RouletteSelection:
		return "roulette"
	case TournamentSelection:
		return "tournament"
	case RankSelection:
		return "rank"
	default:
		return fmt.Sprintf("SelectionMethod(%d)", int(m))
	}
}

// CrossoverMethod picks how two parents exchange genes.
type CrossoverMethod int

const (
	// SinglePointCrossover swaps the tails beyond one cut (paper §3).
	SinglePointCrossover CrossoverMethod = iota
	// TwoPointCrossover swaps the segment between two cuts.
	TwoPointCrossover
	// UniformCrossover swaps each gene independently with probability ½.
	UniformCrossover
)

// String names the method.
func (m CrossoverMethod) String() string {
	switch m {
	case SinglePointCrossover:
		return "single-point"
	case TwoPointCrossover:
		return "two-point"
	case UniformCrossover:
		return "uniform"
	default:
		return fmt.Sprintf("CrossoverMethod(%d)", int(m))
	}
}

// selectTournament fills picks by K-way tournaments.
func selectTournament(fit []float64, picks []int, k int, r *rng.Stream) {
	if k < 2 {
		k = 2
	}
	n := len(fit)
	for i := range picks {
		best := r.Intn(n)
		for round := 1; round < k; round++ {
			c := r.Intn(n)
			if fit[c] < fit[best] {
				best = c
			}
		}
		picks[i] = best
	}
}

// selectRank fills picks with probability proportional to inverse rank:
// the best individual gets weight n, the worst weight 1. order and
// weights are caller-owned scratch (len == len(fit)).
func selectRank(fit []float64, picks []int, order []int, weights []float64, r *rng.Stream) {
	n := len(fit)
	// Rank via argsort of fitness ascending (best first).
	for i := range order {
		order[i] = i
	}
	// Insertion sort: populations are a few hundred individuals.
	for i := 1; i < n; i++ {
		for k := i; k > 0 && fit[order[k]] < fit[order[k-1]]; k-- {
			order[k], order[k-1] = order[k-1], order[k]
		}
	}
	for rank, idx := range order {
		weights[idx] = float64(n - rank)
	}
	total := float64(n) * float64(n+1) / 2
	for i := range picks {
		x := r.Float64() * total
		acc := 0.0
		chosen := n - 1
		for idx, w := range weights {
			acc += w
			if x < acc {
				chosen = idx
				break
			}
		}
		picks[i] = chosen
	}
}

// crossoverTwoPoint swaps the segment between two random cuts in place,
// reporting the exchanged range to the incremental states when inc is
// non-nil. Returns whether any gene actually changed (fitness
// carry-forward skips re-evaluating untouched individuals).
func crossoverTwoPoint(a, b Chromosome, sa, sb IncState, inc Incremental, r *rng.Stream) bool {
	if len(a) < 2 {
		return false
	}
	i := r.Intn(len(a))
	k := r.Intn(len(a))
	if i > k {
		i, k = k, i
	}
	differed := false
	for p := i; p < k; p++ {
		if a[p] != b[p] {
			a[p], b[p] = b[p], a[p]
			differed = true
		}
	}
	if differed && inc != nil {
		inc.SwapRange(sa, sb, a, b, i, k)
	}
	return differed
}

// crossoverUniform swaps each gene with probability ½ in place,
// reporting effective gene changes to the incremental states when inc
// is non-nil. The coin is flipped for every gene (including equal
// ones), exactly as before. Returns whether any gene actually changed.
func crossoverUniform(a, b Chromosome, sa, sb IncState, inc Incremental, r *rng.Stream) bool {
	differed := false
	for i := range a {
		if r.Bool(0.5) {
			if a[i] == b[i] {
				continue
			}
			if inc != nil {
				inc.Update(sa, i, a[i], b[i])
				inc.Update(sb, i, b[i], a[i])
			}
			a[i], b[i] = b[i], a[i]
			differed = true
		}
	}
	return differed
}
