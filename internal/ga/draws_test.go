package ga

import (
	"testing"

	"trustgrid/internal/rng"
)

// onesInc is a minimal Incremental for onesProblem: the state is the
// count of non-zero genes, maintained under edits. Integer counts make
// bit-identity with the full decode trivial, which is the point — these
// tests exercise the GA's draw plumbing, not float reconciliation.
type onesInc struct{}

type onesIncState struct{ nonzero int }

func (onesInc) NewState() IncState { return &onesIncState{} }

func (onesInc) Reset(s IncState, c Chromosome) {
	st := s.(*onesIncState)
	st.nonzero = 0
	for _, g := range c {
		if g != 0 {
			st.nonzero++
		}
	}
}

func (onesInc) Copy(dst, src IncState) {
	*dst.(*onesIncState) = *src.(*onesIncState)
}

func (onesInc) Update(s IncState, gene, oldVal, newVal int) {
	st := s.(*onesIncState)
	if oldVal != 0 {
		st.nonzero--
	}
	if newVal != 0 {
		st.nonzero++
	}
}

func (onesInc) SwapRange(sa, sb IncState, a, b Chromosome, lo, hi int) {
	da, db := sa.(*onesIncState), sb.(*onesIncState)
	for i := lo; i < hi; i++ {
		// a and b hold the post-swap values: a[i] arrived from b, b[i]
		// from a.
		if a[i] != 0 {
			da.nonzero++
		}
		if b[i] != 0 {
			da.nonzero--
		}
		if b[i] != 0 {
			db.nonzero++
		}
		if a[i] != 0 {
			db.nonzero--
		}
	}
}

func (onesInc) Value(s IncState, c Chromosome) float64 {
	return float64(s.(*onesIncState).nonzero)
}

func runOnes(t *testing.T, cfg Config, seed uint64, incremental bool) Result {
	t.Helper()
	p := onesProblem(37, 5)
	if incremental {
		p.Incremental = onesInc{}
		cfg.VerifyIncremental = true
	}
	// A deliberately bad seed (all genes non-zero): the run has real
	// optimization to do, so trajectories discriminate draw sequences.
	bad := make(Chromosome, 37)
	for i := range bad {
		bad[i] = 1 + i%4
	}
	res, err := Run(p, cfg, []Chromosome{bad}, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func sameResult(a, b Result) bool {
	if a.BestFitness != b.BestFitness || len(a.Best) != len(b.Best) || len(a.Trajectory) != len(b.Trajectory) {
		return false
	}
	for i := range a.Best {
		if a.Best[i] != b.Best[i] {
			return false
		}
	}
	for i := range a.Trajectory {
		if a.Trajectory[i] != b.Trajectory[i] {
			return false
		}
	}
	return true
}

// TestRNGVersionV1IsDefault pins the compatibility contract: the zero
// value, explicit rng.V1 and the user-facing spelling Version(1) all
// run the original serial draw path and produce byte-identical results.
// Every pre-versioning golden in the repository depends on this.
func TestRNGVersionV1IsDefault(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Generations = 30
	base := runOnes(t, cfg, 99, false)
	for _, v := range []rng.Version{rng.V1, rng.Version(1)} {
		c := cfg
		c.RNG = v
		if got := runOnes(t, c, 99, false); !sameResult(base, got) {
			t.Fatalf("RNG=%d diverged from the default path", int(v))
		}
	}
}

// TestRNGVersionV2Deterministic checks v2 is a real, reproducible
// contract: same seed same result, and a different sequence from v1
// (if v2 ever silently fell back to the serial path, the second check
// would trip long before a fleet mixed the two).
func TestRNGVersionV2Deterministic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Generations = 30
	cfg.RNG = rng.V2
	a := runOnes(t, cfg, 7, false)
	b := runOnes(t, cfg, 7, false)
	if !sameResult(a, b) {
		t.Fatal("v2 run is not deterministic under a fixed seed")
	}
	v1cfg := cfg
	v1cfg.RNG = rng.V1
	if sameResult(a, runOnes(t, v1cfg, 7, false)) {
		t.Fatal("v2 produced the v1 sequence; the lanes are not engaged")
	}
}

// TestRNGVersionV2IncrementalMatchesFull pins the two v2 mutation
// kernels (mutateMasked / mutateMaskedInc) to each other: evaluation
// consumes no draws, so the incremental and full-decode paths must
// evolve identically. VerifyIncremental additionally cross-checks every
// delta value against the full decode inside the run.
func TestRNGVersionV2IncrementalMatchesFull(t *testing.T) {
	for _, ver := range []rng.Version{rng.V1, rng.V2} {
		cfg := DefaultConfig()
		cfg.Generations = 40
		cfg.MutationProb = 0.05 // enough hits to exercise the masked scan
		cfg.RNG = ver
		full := runOnes(t, cfg, 1234, false)
		inc := runOnes(t, cfg, 1234, true)
		if !sameResult(full, inc) {
			t.Fatalf("%v: incremental evolution diverged from full decode", ver)
		}
	}
}

// TestRNGVersionV2OperatorCombos smoke-runs v2 across every selection ×
// crossover combination: all results must stay legal and the runs must
// not panic (the non-default operators draw from the same lanes).
func TestRNGVersionV2OperatorCombos(t *testing.T) {
	p := onesProblem(23, 4)
	for _, sel := range []SelectionMethod{RouletteSelection, TournamentSelection, RankSelection} {
		for _, cx := range []CrossoverMethod{SinglePointCrossover, TwoPointCrossover, UniformCrossover} {
			cfg := DefaultConfig()
			cfg.Generations = 10
			cfg.RNG = rng.V2
			cfg.Selection = sel
			cfg.Crossover = cx
			res, err := Run(p, cfg, nil, rng.New(5))
			if err != nil {
				t.Fatalf("%v/%v: %v", sel, cx, err)
			}
			for i, g := range res.Best {
				if g < 0 || g >= 4 {
					t.Fatalf("%v/%v: illegal gene %d=%d", sel, cx, i, g)
				}
			}
		}
	}
}

// TestConfigValidateRNG rejects unknown draw versions.
func TestConfigValidateRNG(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RNG = rng.Version(7)
	if err := cfg.Validate(); err == nil {
		t.Fatal("Validate accepted unknown rng version 7")
	}
}
