package ga

import (
	"math"
	"reflect"
	"runtime"
	"testing"

	"trustgrid/internal/rng"
)

// statefulProblem mimics the STGA's fitness shape: each instance keeps a
// scratch buffer, so sharing one instance across goroutines would race
// (the race detector guards this property).
func statefulProblem(length, sites int) *Problem {
	allowed := make([][]int, length)
	for i := range allowed {
		for v := 0; v < sites; v++ {
			if (i+v)%3 != 0 || v == 0 {
				allowed[i] = append(allowed[i], v)
			}
		}
	}
	mk := func() Fitness {
		loads := make([]float64, sites)
		return func(c Chromosome) float64 {
			for i := range loads {
				loads[i] = 0
			}
			for jobIdx, site := range c {
				loads[site] += float64(jobIdx%7) + 1.5
			}
			span := 0.0
			for _, l := range loads {
				if l > span {
					span = l
				}
			}
			return span
		}
	}
	return &Problem{Length: length, Allowed: allowed, Fitness: mk(), NewFitness: mk}
}

func TestParallelMatchesSerial(t *testing.T) {
	p := statefulProblem(40, 12)
	cfg := DefaultConfig()
	cfg.PopulationSize = 60
	cfg.Generations = 30

	run := func(workers int) Result {
		c := cfg
		c.Workers = workers
		res, err := Run(p, c, []Chromosome{p.RandomChromosome(rng.New(9))}, rng.New(42))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return res
	}

	serial := run(1)
	for _, w := range []int{0, 2, 3, 5, 8, 64} {
		got := run(w)
		if !reflect.DeepEqual(got.Best, serial.Best) {
			t.Fatalf("workers=%d: best chromosome diverged from serial", w)
		}
		if got.BestFitness != serial.BestFitness {
			t.Fatalf("workers=%d: best fitness %v != %v", w, got.BestFitness, serial.BestFitness)
		}
		if !reflect.DeepEqual(got.Trajectory, serial.Trajectory) {
			t.Fatalf("workers=%d: fitness trajectory diverged from serial", w)
		}
	}
}

func TestParallelMatchesSerialAcrossSelections(t *testing.T) {
	p := statefulProblem(25, 8)
	for _, sel := range []SelectionMethod{RouletteSelection, TournamentSelection, RankSelection} {
		cfg := DefaultConfig()
		cfg.PopulationSize = 30
		cfg.Generations = 15
		cfg.Selection = sel

		cfg.Workers = 1
		serial, err := Run(p, cfg, nil, rng.New(7))
		if err != nil {
			t.Fatal(err)
		}
		cfg.Workers = 4
		par, err := Run(p, cfg, nil, rng.New(7))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(par, serial) {
			t.Fatalf("selection %v: parallel result diverged from serial", sel)
		}
	}
}

func TestNewFitnessOnly(t *testing.T) {
	p := statefulProblem(10, 4)
	p.Fitness = nil // NewFitness alone must satisfy validation and the serial path
	cfg := DefaultConfig()
	cfg.PopulationSize = 8
	cfg.Generations = 5
	cfg.Workers = 1
	res, err := Run(p, cfg, nil, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(res.BestFitness, 0) || res.BestFitness <= 0 {
		t.Fatalf("unexpected best fitness %v", res.BestFitness)
	}
}

func TestNegativeWorkersDegradeToSerial(t *testing.T) {
	// Worker counts can arrive straight from user input (benchsuite
	// -gaworkers); a bad value must degrade, not error mid-simulation.
	if w := (Config{Workers: -1}).effectiveWorkers(); w != 1 {
		t.Fatalf("Workers=-1 resolved to %d, want serial", w)
	}
}

func TestPopulationSmallerThanPool(t *testing.T) {
	p := statefulProblem(6, 3)
	cfg := DefaultConfig()
	cfg.PopulationSize = 2 // fewer chromosomes than workers
	cfg.Generations = 3
	cfg.Workers = 16
	par, err := Run(p, cfg, nil, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 1
	serial, err := Run(p, cfg, nil, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(par, serial) {
		t.Fatal("tiny population diverged between pool and serial")
	}
}

func TestEffectiveWorkers(t *testing.T) {
	if w := (Config{}).effectiveWorkers(); w != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers=0 resolved to %d, want GOMAXPROCS=%d", w, runtime.GOMAXPROCS(0))
	}
	if w := (Config{Workers: 3}).effectiveWorkers(); w != 3 {
		t.Fatalf("Workers=3 resolved to %d", w)
	}
}
