package ga

import (
	"testing"

	"trustgrid/internal/rng"
)

func TestSelectionMethodStrings(t *testing.T) {
	if RouletteSelection.String() != "roulette" ||
		TournamentSelection.String() != "tournament" ||
		RankSelection.String() != "rank" {
		t.Fatal("selection names wrong")
	}
	if SinglePointCrossover.String() != "single-point" ||
		TwoPointCrossover.String() != "two-point" ||
		UniformCrossover.String() != "uniform" {
		t.Fatal("crossover names wrong")
	}
}

func TestTournamentFavorsFit(t *testing.T) {
	r := rng.New(1)
	pop := []Chromosome{{0}, {1}}
	big := make([]Chromosome, 100)
	fit := make([]float64, 100)
	for i := range big {
		big[i] = pop[i%2]
		fit[i] = float64(1 + i%2*99) // even indices fit, odd unfit
	}
	picks := make([]int, 1000)
	selectTournament(fit, picks, 3, r)
	fitCount := 0
	for _, src := range picks {
		if big[src][0] == 0 {
			fitCount++
		}
	}
	// P(all 3 samples unfit) = 1/8 → expect ≈ 875 fit picks.
	if fitCount < 800 {
		t.Fatalf("tournament picked fit individual only %d/1000", fitCount)
	}
}

func TestRankSelectionScaleInvariant(t *testing.T) {
	r1 := rng.New(7)
	r2 := rng.New(7)
	pop := []Chromosome{{0}, {1}, {2}, {3}}
	fitA := []float64{1, 2, 3, 4}
	fitB := []float64{1, 2000, 300000, 4e9} // same ranks, wild scale
	picksA := make([]int, 400)
	picksB := make([]int, 400)
	order := make([]int, 4)
	weights := make([]float64, 4)
	selectRank(fitA, picksA, order, weights, r1)
	selectRank(fitB, picksB, order, weights, r2)
	for i := range picksA {
		if pop[picksA[i]][0] != pop[picksB[i]][0] {
			t.Fatal("rank selection must depend only on ranks")
		}
	}
}

func TestRankSelectionDistribution(t *testing.T) {
	r := rng.New(3)
	pop := []Chromosome{{0}, {1}, {2}, {3}}
	fit := []float64{10, 20, 30, 40}
	picks := make([]int, 10000)
	order := make([]int, 4)
	weights := make([]float64, 4)
	selectRank(fit, picks, order, weights, r)
	counts := make([]int, 4)
	for _, src := range picks {
		counts[pop[src][0]]++
	}
	// Expected weights 4:3:2:1 → 4000, 3000, 2000, 1000.
	if counts[0] < 3600 || counts[3] > 1400 {
		t.Fatalf("rank weights off: %v", counts)
	}
	if !(counts[0] > counts[1] && counts[1] > counts[2] && counts[2] > counts[3]) {
		t.Fatalf("rank ordering violated: %v", counts)
	}
}

func TestTwoPointCrossoverPreservesMultiset(t *testing.T) {
	r := rng.New(5)
	for trial := 0; trial < 100; trial++ {
		a := Chromosome{1, 2, 3, 4, 5, 6}
		b := Chromosome{7, 8, 9, 10, 11, 12}
		crossoverTwoPoint(a, b, nil, nil, nil, r)
		sum := 0
		for i := range a {
			sum += a[i] + b[i]
		}
		if sum != 78 {
			t.Fatalf("two-point crossover lost genes: %v %v", a, b)
		}
		// Positions outside the swapped segment keep their origin: each
		// column still holds {original a, original b} in some order.
		for i := range a {
			origA, origB := i+1, i+7
			if !(a[i] == origA && b[i] == origB || a[i] == origB && b[i] == origA) {
				t.Fatalf("column %d corrupted: %v %v", i, a, b)
			}
		}
	}
}

func TestUniformCrossoverColumns(t *testing.T) {
	r := rng.New(6)
	a := make(Chromosome, 1000)
	b := make(Chromosome, 1000)
	for i := range a {
		a[i] = 0
		b[i] = 1
	}
	crossoverUniform(a, b, nil, nil, nil, r)
	swapped := 0
	for i := range a {
		if a[i] == 1 {
			swapped++
		}
		if a[i]+b[i] != 1 {
			t.Fatal("uniform crossover corrupted a column")
		}
	}
	if swapped < 400 || swapped > 600 {
		t.Fatalf("uniform crossover swapped %d/1000 columns, want ~500", swapped)
	}
}

func TestRunWithAllOperatorCombos(t *testing.T) {
	p := onesProblem(12, 3)
	for _, sel := range []SelectionMethod{RouletteSelection, TournamentSelection, RankSelection} {
		for _, cx := range []CrossoverMethod{SinglePointCrossover, TwoPointCrossover, UniformCrossover} {
			cfg := Config{
				PopulationSize: 30, Generations: 40,
				CrossoverProb: 0.8, MutationProb: 0.05,
				Elitism: true, Selection: sel, Crossover: cx,
			}
			res, err := Run(p, cfg, nil, rng.New(9))
			if err != nil {
				t.Fatalf("%v/%v: %v", sel, cx, err)
			}
			// All combos must make clear progress on the trivial problem.
			if res.BestFitness > 4 {
				t.Fatalf("%v/%v stalled at fitness %v", sel, cx, res.BestFitness)
			}
			for i := 1; i < len(res.Trajectory); i++ {
				if res.Trajectory[i] > res.Trajectory[i-1] {
					t.Fatalf("%v/%v: elitism violated", sel, cx)
				}
			}
		}
	}
}
