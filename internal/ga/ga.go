package ga

import (
	"fmt"
	"math"
	"math/bits"

	"trustgrid/internal/rng"
)

// Chromosome is a candidate solution: gene i is the site assignment of
// job i in the batch.
type Chromosome []int

// Clone copies the chromosome.
func (c Chromosome) Clone() Chromosome {
	out := make(Chromosome, len(c))
	copy(out, c)
	return out
}

// Fitness scores a chromosome; smaller is better (the paper's fitness is
// the completion time of the encoded schedule).
type Fitness func(Chromosome) float64

// Config holds the GA hyper-parameters (Table 1 defaults).
type Config struct {
	PopulationSize int     // Table 1: 200
	Generations    int     // Table 1: 100
	CrossoverProb  float64 // Table 1: 0.8
	MutationProb   float64 // Table 1: 0.01
	// Elitism keeps the best individual unchanged each generation.
	Elitism bool
	// Selection picks the parent-sampling operator (default: the paper's
	// value-based roulette wheel). See the operator ablation.
	Selection SelectionMethod
	// TournamentSize is K for TournamentSelection (default 3).
	TournamentSize int
	// Crossover picks the recombination operator (default: the paper's
	// single-point tail swap).
	Crossover CrossoverMethod
	// Workers is the number of goroutines used to evaluate the
	// population's fitness: 0 means runtime.GOMAXPROCS, 1 (or any
	// negative value) forces the serial path, n > 1 uses exactly n
	// workers. Parallel evaluation
	// requires Problem.NewFitness (per-worker fitness instances); with
	// only a bare Problem.Fitness the evaluator stays serial, since it
	// cannot know whether the closure carries scratch state. Selection,
	// crossover and mutation always consume the single master rng.Stream,
	// so every worker count produces bit-identical evolution.
	//
	// A Problem with an Incremental evaluator bypasses the pool
	// entirely: delta evaluation is cheaper than fanning full decodes
	// out, and its values are bit-identical by contract, so Workers has
	// no effect on such problems.
	Workers int
	// VerifyIncremental cross-checks every incremental fitness value
	// against the full decode (Problem.Fitness/NewFitness) and panics on
	// the first divergence. Debug/test only: it re-adds the full decode
	// cost the incremental path exists to avoid.
	VerifyIncremental bool
	// RNG selects the draw-sequence contract. rng.V1 (the zero value)
	// is the original serial sequence — one stream threaded through
	// init, selection, crossover and mutation in loop order — and is
	// what every pre-versioning golden pins. rng.V2 forks the run
	// stream into independent per-phase lanes and draws the mutation
	// hit mask as a batched Bernoulli bit vector (rng.DrawsV2): faster,
	// deliberately draw-incompatible with V1, and refused by mixed
	// fleets and stale WALs at the fingerprint layer.
	RNG rng.Version
}

// DefaultConfig returns the Table 1 hyper-parameters.
func DefaultConfig() Config {
	return Config{
		PopulationSize: 200,
		Generations:    100,
		CrossoverProb:  0.8,
		MutationProb:   0.01,
		Elitism:        true,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.PopulationSize < 2:
		return fmt.Errorf("ga: population size %d < 2", c.PopulationSize)
	case c.Generations < 0:
		return fmt.Errorf("ga: negative generation count %d", c.Generations)
	case c.CrossoverProb < 0 || c.CrossoverProb > 1:
		return fmt.Errorf("ga: crossover probability %v outside [0,1]", c.CrossoverProb)
	case c.MutationProb < 0 || c.MutationProb > 1:
		return fmt.Errorf("ga: mutation probability %v outside [0,1]", c.MutationProb)
	}
	if _, err := rng.ParseVersion(int(c.RNG)); err != nil {
		return err
	}
	return nil
}

// Problem describes one GA run: the chromosome length, the per-gene
// allowed values (eligible sites per job), and the fitness function.
type Problem struct {
	Length  int
	Allowed [][]int // Allowed[i] lists legal values of gene i; must be non-empty
	Fitness Fitness
	// NewFitness, when non-nil, builds a fresh fitness instance per
	// evaluation worker. It is what enables parallel evaluation
	// (Config.Workers): fitness closures commonly carry per-call scratch
	// buffers (the STGA's does), so a single shared closure cannot be
	// invoked concurrently. Every instance must compute the identical
	// function — workers differ only in which population slice they
	// score. When NewFitness is set, Fitness may be nil.
	NewFitness func() Fitness
	// Incremental, when non-nil, switches evaluation to the delta path:
	// per-individual decode states maintained through selection,
	// crossover and mutation, with Value() exactly equal to the full
	// decode (see incremental.go). Takes precedence over the worker
	// pool. When set, Fitness/NewFitness are only needed for
	// Config.VerifyIncremental.
	Incremental Incremental
}

// Validate checks the problem definition.
func (p *Problem) Validate() error {
	if p.Length <= 0 {
		return fmt.Errorf("ga: chromosome length %d <= 0", p.Length)
	}
	if len(p.Allowed) != p.Length {
		return fmt.Errorf("ga: allowed-set count %d != length %d", len(p.Allowed), p.Length)
	}
	for i, a := range p.Allowed {
		if len(a) == 0 {
			return fmt.Errorf("ga: gene %d has empty allowed set", i)
		}
	}
	if p.Fitness == nil && p.NewFitness == nil && p.Incremental == nil {
		return fmt.Errorf("ga: nil fitness function")
	}
	return nil
}

// RandomChromosome draws a uniformly random legal chromosome.
func (p *Problem) RandomChromosome(r *rng.Stream) Chromosome {
	c := make(Chromosome, p.Length)
	for i := range c {
		a := p.Allowed[i]
		c[i] = a[r.Intn(len(a))]
	}
	return c
}

// Repair clamps every illegal gene to a random allowed value; used when
// adapting historical schedules whose site choices may violate the
// current batch's constraints.
func (p *Problem) Repair(c Chromosome, r *rng.Stream) {
	for i := range c {
		legal := false
		for _, v := range p.Allowed[i] {
			if c[i] == v {
				legal = true
				break
			}
		}
		if !legal {
			a := p.Allowed[i]
			c[i] = a[r.Intn(len(a))]
		}
	}
}

// Result reports the outcome of a run.
type Result struct {
	Best        Chromosome
	BestFitness float64
	// Trajectory[g] is the best fitness after generation g (index 0 is
	// the initial population). Used for the convergence experiments
	// (paper Figs. 5 and 7(b)).
	Trajectory []float64
	// Generations actually executed.
	Generations int
}

// Run executes the GA: evaluate, then per generation select (roulette
// wheel on 1/fitness with elitism), crossover, mutate. seeds (may be
// empty) are inserted into the initial population after repair; the
// remainder is random.
//
// The generation loop is allocation-free: the population is
// double-buffered against a preallocated twin, selection produces pick
// indices that are copied in place, and the roulette/rank scratch
// vectors are reused across generations. None of this changes a single
// rng draw, so evolution is bit-identical to the allocating
// implementation it replaced (and to the serial path at any worker
// count, as before).
func Run(p *Problem, cfg Config, seeds []Chromosome, r *rng.Stream) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}

	// Per-phase draw streams. Under V1 (the default) every phase aliases
	// the run stream r — the original serial contract, byte-identical to
	// every pre-versioning golden. Under V2 each phase draws from its own
	// lane forked off r, and the mutation hit mask is generated in bulk
	// per generation (see the mutation section below).
	ver, _ := rng.ParseVersion(int(cfg.RNG)) // Validate already vetted it
	rInit, rSel, rCross, rMutVal := r, r, r, r
	var d *rng.DrawsV2
	if ver == rng.V2 {
		d = rng.NewDrawsV2(r)
		rInit, rSel, rCross, rMutVal = d.Init, d.Select, d.Cross, d.MutVal
	}

	pop := make([]Chromosome, 0, cfg.PopulationSize)
	for _, s := range seeds {
		if len(pop) == cfg.PopulationSize {
			break
		}
		c := s.Clone()
		if len(c) != p.Length {
			c = adaptLength(c, p.Length)
		}
		p.Repair(c, rInit)
		pop = append(pop, c)
	}
	for len(pop) < cfg.PopulationSize {
		pop = append(pop, p.RandomChromosome(rInit))
	}

	// Delta evaluation when the problem provides it; otherwise the
	// (possibly pooled) full-decode evaluator.
	var ir *incRun
	var eval *evaluator
	if p.Incremental != nil {
		ir = newIncRun(p, cfg, cfg.PopulationSize)
		for i, c := range pop {
			ir.inc.Reset(ir.states[i], c)
		}
	} else {
		eval = newEvaluator(p, cfg)
		defer eval.close()
	}
	fit := make([]float64, len(pop))
	// Fitness carry-forward (full-decode path): selection copies each
	// pick's known score into fitNext alongside the chromosome, and only
	// individuals crossover or mutation actually changed are marked
	// dirty and re-decoded. Scores are pure functions of the chromosome,
	// so carried values are bit-identical to a re-evaluation; no rng
	// draw depends on any of this. The incremental path has its own
	// cached-span equivalent inside the delta states.
	var fitNext []float64
	var dirty []bool
	if ir == nil {
		fitNext = make([]float64, len(pop))
		dirty = make([]bool, len(pop))
	}
	evaluate := func() {
		if ir != nil {
			ir.evaluate(pop, fit)
		} else {
			eval.evaluate(pop, fit, dirty)
		}
	}

	for i := range dirty {
		dirty[i] = true
	}
	evaluate()
	bestIdx := argMin(fit)
	best := pop[bestIdx].Clone()
	bestFit := fit[bestIdx]
	if ir != nil {
		ir.inc.Copy(ir.bestState, ir.states[bestIdx])
	}
	trajectory := make([]float64, 0, cfg.Generations+1)
	trajectory = append(trajectory, bestFit)

	next := make([]Chromosome, len(pop))
	for i := range next {
		next[i] = make(Chromosome, p.Length)
	}
	picks := make([]int, len(pop))
	// Scratch for roulette (weights, cum) and rank (order reuses picks'
	// sizing, weights shared).
	weights := make([]float64, len(pop))
	cum := make([]float64, len(pop))
	order := make([]int, len(pop))
	// Precomputed Bernoulli comparators: bit-identical to
	// r.Bool(CrossoverProb)/r.Bool(MutationProb), minus the per-draw
	// float arithmetic (mutation draws once per gene per individual).
	crossDraw := rng.NewBernoulli(cfg.CrossoverProb)
	mutDraw := rng.NewBernoulli(cfg.MutationProb)
	// V2 draws the whole generation's mutation hits as one bit vector:
	// bit i*Length+g of mutMask decides whether gene g of individual i
	// mutates. Replacement values then come from the MutVal lane in hit
	// order.
	var mutMask []uint64
	if d != nil {
		mutMask = make([]uint64, (cfg.PopulationSize*p.Length+63)/64)
	}

	for g := 0; g < cfg.Generations; g++ {
		switch cfg.Selection {
		case TournamentSelection:
			k := cfg.TournamentSize
			if k == 0 {
				k = 3
			}
			selectTournament(fit, picks, k, rSel)
		case RankSelection:
			selectRank(fit, picks, order, weights, rSel)
		default:
			selectRoulette(fit, picks, weights, cum, rSel)
		}
		for i, src := range picks {
			copy(next[i], pop[src])
			if ir != nil {
				ir.inc.Copy(ir.nextStates[i], ir.states[src])
			} else {
				fitNext[i] = fit[src] // the pick's score is already known
			}
		}
		pop, next = next, pop
		if ir != nil {
			ir.states, ir.nextStates = ir.nextStates, ir.states
		} else {
			fit, fitNext = fitNext, fit
			for i := range dirty {
				dirty[i] = false
			}
		}

		// Crossover in adjacent pairs (the selection output is already a
		// random sample, so pairing neighbours is unbiased).
		for i := 0; i+1 < len(pop); i += 2 {
			if crossDraw.Hit(rCross) {
				a, b := pop[i], pop[i+1]
				var sa, sb IncState
				var inc Incremental
				if ir != nil {
					sa, sb, inc = ir.states[i], ir.states[i+1], ir.inc
				}
				var changed bool
				switch cfg.Crossover {
				case TwoPointCrossover:
					changed = crossoverTwoPoint(a, b, sa, sb, inc, rCross)
				case UniformCrossover:
					changed = crossoverUniform(a, b, sa, sb, inc, rCross)
				default:
					changed = crossover(a, b, sa, sb, inc, rCross)
				}
				if changed && dirty != nil {
					dirty[i], dirty[i+1] = true, true
				}
			}
		}
		// Mutation: each gene is re-drawn from its allowed set with
		// probability MutationProb (the standard per-gene reading of the
		// paper's "mutation probability 0.01"; a per-chromosome reading
		// leaves 40-gene chromosomes nearly frozen). V1 draws the gate
		// per gene from the serial stream; V2 fills the generation's hit
		// mask in one batched pass and word-scans it, so the common case
		// (no hit in 64 genes) costs one load.
		switch {
		case d != nil:
			d.MutBit.FillBernoulli(mutMask, len(pop)*p.Length, mutDraw)
			if ir != nil {
				for i := range pop {
					mutateMaskedInc(pop[i], p, mutMask, i*p.Length, ir.states[i], ir.inc, rMutVal)
				}
			} else {
				for i := range pop {
					if mutateMasked(pop[i], p, mutMask, i*p.Length, rMutVal) {
						dirty[i] = true
					}
				}
			}
		case ir != nil:
			for i := range pop {
				mutateInc(pop[i], p, mutDraw, ir.states[i], ir.inc, r)
			}
		default:
			for i := range pop {
				if mutate(pop[i], p, mutDraw, r) {
					dirty[i] = true
				}
			}
		}
		evaluate()
		genBest := argMin(fit)
		if fit[genBest] < bestFit {
			copy(best, pop[genBest])
			bestFit = fit[genBest]
			if ir != nil {
				ir.inc.Copy(ir.bestState, ir.states[genBest])
			}
		} else if cfg.Elitism {
			// Re-insert the incumbent over the worst individual.
			worst := argMax(fit)
			copy(pop[worst], best)
			fit[worst] = bestFit
			if ir != nil {
				ir.inc.Copy(ir.states[worst], ir.bestState)
			}
		}
		trajectory = append(trajectory, bestFit)
	}
	return Result{Best: best, BestFitness: bestFit, Trajectory: trajectory, Generations: cfg.Generations}, nil
}

// adaptLength truncates or modularly tiles a chromosome to length n
// (historical schedules may come from batches of different sizes).
func adaptLength(c Chromosome, n int) Chromosome {
	out := make(Chromosome, n)
	for i := range out {
		out[i] = c[i%len(c)]
	}
	return out
}

func argMin(xs []float64) int {
	best := 0
	for i := 1; i < len(xs); i++ {
		if xs[i] < xs[best] {
			best = i
		}
	}
	return best
}

func argMax(xs []float64) int {
	best := 0
	for i := 1; i < len(xs); i++ {
		if xs[i] > xs[best] {
			best = i
		}
	}
	return best
}

// selectRoulette fills picks with population indices sampled
// proportionally to their value on a windowed scale: w = (worst − f) +
// 10% of the spread. This is the paper's value-based roulette wheel
// with standard window scaling — raw 1/f weights degenerate to uniform
// selection once the population's makespans cluster within a few
// percent, which stalls the search entirely. weights and cum are
// caller-owned scratch (len == len(fit)); the draw sequence is the one
// the cloning implementation consumed.
func selectRoulette(fit []float64, picks []int, weights, cum []float64, r *rng.Stream) {
	n := len(fit)
	worst, best := fit[0], fit[0]
	for _, f := range fit {
		if f > worst && !math.IsInf(f, 1) {
			worst = f
		}
		if f < best {
			best = f
		}
	}
	spread := worst - best
	floor := 0.1 * spread
	if spread == 0 {
		floor = 1 // uniform selection when all fitnesses are equal
	}
	var total float64
	for i, f := range fit {
		w := 0.0
		if !math.IsInf(f, 1) {
			w = (worst - f) + floor
		}
		weights[i] = w
		total += w
	}
	if total <= 0 {
		// Every individual is infinitely unfit: select uniformly.
		for i := range weights {
			weights[i] = 1
		}
		total = float64(n)
	}
	// Cumulative wheel + binary search keeps selection O(n log n).
	acc := 0.0
	for i, w := range weights {
		acc += w
		cum[i] = acc
	}
	for i := 0; i < n; i++ {
		x := r.Float64() * total
		lo, hi := 0, n-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		picks[i] = lo
	}
}

// crossover performs single-point crossover in place: both tails beyond a
// random cut point are swapped. Genes stay legal because each position's
// allowed set is position-specific and both parents are legal. When inc
// is non-nil, the exchanged range is reported wholesale through
// SwapRange — cheaper than per-gene updates because the incremental
// state can reconcile whole bitset words. Returns whether any gene
// actually changed.
func crossover(a, b Chromosome, sa, sb IncState, inc Incremental, r *rng.Stream) bool {
	if len(a) < 2 {
		return false
	}
	cut := 1 + r.Intn(len(a)-1)
	// Detect whether the tails differ at all, four genes per iteration
	// (the OR of XORs is zero exactly when all four pairs match): crossing
	// converged-identical parents — increasingly common late in a run —
	// costs one branch-light scan and no writes. When they do differ,
	// swap the whole tail unconditionally: swapping equal genes is a
	// no-op, and the straight-line loop beats a compare-and-swap whose
	// branch the predictor cannot learn.
	differed := false
	i := cut
	for ; i+4 <= len(a); i += 4 {
		if (a[i]^b[i])|(a[i+1]^b[i+1])|(a[i+2]^b[i+2])|(a[i+3]^b[i+3]) != 0 {
			differed = true
			break
		}
	}
	if !differed {
		for ; i < len(a); i++ {
			if a[i] != b[i] {
				differed = true
				break
			}
		}
	}
	if !differed {
		return false
	}
	for p := i; p < len(a); p++ {
		a[p], b[p] = b[p], a[p]
	}
	if inc != nil {
		inc.SwapRange(sa, sb, a, b, cut, len(a))
	}
	return true
}

// mutate re-draws each gene from its allowed set with the prob
// Bernoulli (identical draws to r.Bool(MutationProb)). Returns whether
// any gene actually changed value (a hit may re-draw the same site).
func mutate(c Chromosome, p *Problem, prob rng.Bernoulli, r *rng.Stream) bool {
	changed := false
	for i := range c {
		if prob.Hit(r) {
			a := p.Allowed[i]
			if v := a[r.Intn(len(a))]; v != c[i] {
				c[i] = v
				changed = true
			}
		}
	}
	return changed
}

// mutateInc is mutate with incremental-state maintenance: identical rng
// draws, with each effective gene change reported through Update.
func mutateInc(c Chromosome, p *Problem, prob rng.Bernoulli, s IncState, inc Incremental, r *rng.Stream) bool {
	changed := false
	for i := range c {
		if prob.Hit(r) {
			a := p.Allowed[i]
			v := a[r.Intn(len(a))]
			if v != c[i] {
				inc.Update(s, i, c[i], v)
				c[i] = v
				changed = true
			}
		}
	}
	return changed
}

// mutateMasked is the V2 mutation kernel: bit off+i of bitvec decides
// whether gene i mutates, replacement values come from the MutVal lane
// in hit order. The scan jumps word to word, so at MutationProb 0.01 a
// 64-gene stretch with no hits costs one load and one branch. Bits past
// off+len(c) belong to the next individual's window and are ignored.
func mutateMasked(c Chromosome, p *Problem, bitvec []uint64, off int, r *rng.Stream) bool {
	n := len(c)
	changed := false
	for i := 0; i < n; {
		pos := off + i
		w := bitvec[pos>>6] >> uint(pos&63)
		if w == 0 {
			i += 64 - pos&63
			continue
		}
		i += bits.TrailingZeros64(w)
		if i >= n {
			break
		}
		a := p.Allowed[i]
		if v := a[r.Intn(len(a))]; v != c[i] {
			c[i] = v
			changed = true
		}
		i++
	}
	return changed
}

// mutateMaskedInc is mutateMasked with incremental-state maintenance:
// identical draws, effective changes reported through Update.
func mutateMaskedInc(c Chromosome, p *Problem, bitvec []uint64, off int, s IncState, inc Incremental, r *rng.Stream) bool {
	n := len(c)
	changed := false
	for i := 0; i < n; {
		pos := off + i
		w := bitvec[pos>>6] >> uint(pos&63)
		if w == 0 {
			i += 64 - pos&63
			continue
		}
		i += bits.TrailingZeros64(w)
		if i >= n {
			break
		}
		a := p.Allowed[i]
		v := a[r.Intn(len(a))]
		if v != c[i] {
			inc.Update(s, i, c[i], v)
			c[i] = v
			changed = true
		}
		i++
	}
	return changed
}
