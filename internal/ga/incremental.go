// Incremental (delta) fitness evaluation.
//
// The GA's evaluation cost used to be a full chromosome decode per
// individual per generation, even when crossover and mutation had
// changed a handful of genes. The Incremental interface lets a problem
// carry a per-individual decode state through the evolution instead:
// selection copies it, crossover and mutation report each gene edit
// through Update, and Value reads the fitness off the maintained state.
//
// The hard constraint is exactness: Value must return the bit-identical
// float64 the full decode would, every time, because fitness values
// steer selection and the repository's determinism suite pins schedules
// byte-for-byte. Implementations achieve this by keeping enough
// structure to replay the full decode's floating-point operation order
// for any part of the state they rebuild (see the STGA's per-site
// membership bitsets). Config.VerifyIncremental cross-checks every
// evaluation against the full decode at runtime for tests and debugging.
package ga

// IncState is an opaque per-individual decode state owned by an
// Incremental implementation.
type IncState any

// Incremental maintains per-individual fitness state under gene edits.
// All methods are called from the single goroutine running the GA.
type Incremental interface {
	// NewState allocates one individual's state (called once per
	// population slot at the start of a run).
	NewState() IncState
	// Reset decodes c into s from scratch.
	Reset(s IncState, c Chromosome)
	// Copy makes dst an exact copy of src (selection).
	Copy(dst, src IncState)
	// Update applies one gene edit: gene changed from oldVal to newVal.
	// Only called when oldVal != newVal.
	Update(s IncState, gene, oldVal, newVal int)
	// SwapRange records that genes [lo, hi) were exchanged between
	// chromosomes a and b (single-point and two-point crossover). The
	// chromosomes have already been swapped when it is called; positions
	// where both parents agreed are no-ops the implementation detects
	// with one scan instead of one interface call per gene.
	SwapRange(sa, sb IncState, a, b Chromosome, lo, hi int)
	// Value returns the fitness of chromosome c, whose edits since the
	// last Reset/Value have all been reported to s. Implementations pick
	// the cheaper of replaying the deltas and rescanning c (the
	// chromosome is the same one the edits described, so both agree).
	// The result must equal the full decode bit-for-bit.
	Value(s IncState, c Chromosome) float64
}

// incRun is the per-run incremental evaluation context: the population's
// states, double-buffered alongside pop/next, plus the incumbent's.
type incRun struct {
	inc        Incremental
	states     []IncState
	nextStates []IncState
	bestState  IncState
	// verify, when non-nil, is the full-decode fitness every Value call
	// is cross-checked against (Config.VerifyIncremental).
	verify Fitness
}

func newIncRun(p *Problem, cfg Config, popSize int) *incRun {
	ir := &incRun{inc: p.Incremental}
	ir.states = make([]IncState, popSize)
	ir.nextStates = make([]IncState, popSize)
	for i := 0; i < popSize; i++ {
		ir.states[i] = ir.inc.NewState()
		ir.nextStates[i] = ir.inc.NewState()
	}
	ir.bestState = ir.inc.NewState()
	if cfg.VerifyIncremental {
		ir.verify = p.Fitness
		if ir.verify == nil && p.NewFitness != nil {
			ir.verify = p.NewFitness()
		}
		if ir.verify == nil {
			// Silently verifying nothing would defeat the flag's whole
			// point; this is a configuration bug, not an input condition.
			panic("ga: VerifyIncremental set but the problem has no full-decode fitness to check against")
		}
	}
	return ir
}

// evaluate fills fit from the maintained states.
func (ir *incRun) evaluate(pop []Chromosome, fit []float64) {
	for i := range pop {
		fit[i] = ir.inc.Value(ir.states[i], pop[i])
		if ir.verify != nil {
			if full := ir.verify(pop[i]); full != fit[i] {
				panic("ga: incremental fitness diverged from full decode")
			}
		}
	}
}
