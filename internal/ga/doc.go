// Package ga implements the genetic-algorithm machinery of the paper's
// §3: integer-vector chromosomes encoding job→site assignments, a
// value-based roulette-wheel selection with elitism, single-point
// crossover, and per-gene mutation constrained to each gene's allowed
// value set.
//
// The package is generic over the fitness function; the STGA (package
// stga) supplies batch-makespan fitness and history-seeded initial
// populations, and the conventional cold-start GA baseline uses the same
// machinery with random initialization only.
//
// DESIGN.md §1.1 inventory row: generic integer-vector GA: selection, crossover, mutation, elitism, and the parallel fitness evaluator (§5.1).
package ga
