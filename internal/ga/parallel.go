// Parallel fitness evaluation.
//
// Fitness evaluation is the GA's hot path — Table 1 runs score 200
// chromosomes per generation for 100 generations per batch — and it is
// the only stage with no sequential dependency: each chromosome's score
// is a pure function of the chromosome. The evaluator below partitions
// the population across a persistent pool of worker goroutines, one
// fitness instance per worker (Problem.NewFitness), writing into
// disjoint slices of the shared fitness vector. Because the scores are
// bit-identical to the serial path and selection/crossover/mutation
// still consume the single master rng.Stream, the whole run is
// reproducible at any worker count.
package ga

import (
	"runtime"
	"sync"
)

// effectiveWorkers resolves Config.Workers: 0 → GOMAXPROCS, negative →
// serial (mirroring experiments.Setup.Workers, so a worker count wired
// through from user input never turns into a run error).
func (c Config) effectiveWorkers() int {
	if c.Workers == 0 {
		return runtime.GOMAXPROCS(0)
	}
	if c.Workers < 1 {
		return 1
	}
	return c.Workers
}

// evalTask is one contiguous population slice to score.
type evalTask struct {
	pop   []Chromosome
	fit   []float64
	dirty []bool // nil: score everything
	lo    int    // first index of the slice within the population
	hi    int    // one past the last index
}

// evaluator scores populations, serially or on a worker pool. It is
// created once per Run and reused every generation so pool start-up is
// amortized across the whole evolution.
type evaluator struct {
	fit     Fitness       // serial path (nil when the pool is active)
	tasks   chan evalTask // nil when serial
	workers int
	wg      sync.WaitGroup
}

// newEvaluator picks the execution strategy. The pool requires both
// Workers > 1 (after GOMAXPROCS resolution) and a NewFitness factory —
// a bare Fitness closure may carry scratch state, so it is never shared
// across goroutines.
func newEvaluator(p *Problem, cfg Config) *evaluator {
	w := cfg.effectiveWorkers()
	if w > 1 && p.NewFitness != nil {
		e := &evaluator{tasks: make(chan evalTask), workers: w}
		for k := 0; k < w; k++ {
			f := p.NewFitness()
			go func() {
				for t := range e.tasks {
					for i := t.lo; i < t.hi; i++ {
						if t.dirty == nil || t.dirty[i] {
							t.fit[i] = f(t.pop[i])
						}
					}
					e.wg.Done()
				}
			}()
		}
		return e
	}
	f := p.Fitness
	if f == nil {
		f = p.NewFitness()
	}
	return &evaluator{fit: f}
}

// evaluate fills fit[i] with the score of pop[i]. When dirty is
// non-nil, indices marked clean keep their existing fit value: fitness
// is a pure function of the chromosome, so an individual the operators
// did not touch still has the score selection carried over for it
// (fitness carry-forward — as the population converges, crossover
// between identical parents and value-preserving mutations leave a
// growing share of each generation clean).
func (e *evaluator) evaluate(pop []Chromosome, fit []float64, dirty []bool) {
	if e.tasks == nil {
		for i, c := range pop {
			if dirty == nil || dirty[i] {
				fit[i] = e.fit(c)
			}
		}
		return
	}
	// One contiguous chunk per worker; workers pull chunks as they free
	// up. Which worker scores which chunk is non-deterministic, but
	// every fitness instance computes the same function over disjoint
	// index ranges, so the resulting vector is identical regardless.
	n := len(pop)
	chunk := (n + e.workers - 1) / e.workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		e.wg.Add(1)
		e.tasks <- evalTask{pop: pop, fit: fit, dirty: dirty, lo: lo, hi: hi}
	}
	e.wg.Wait()
}

// close shuts the worker pool down; the evaluator must not be used
// afterwards. A serial evaluator's close is a no-op.
func (e *evaluator) close() {
	if e.tasks != nil {
		close(e.tasks)
	}
}
