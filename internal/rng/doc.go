// Package rng provides deterministic, splittable pseudo-random number
// streams and the distributions used by the trustgrid simulator.
//
// The simulator must be exactly reproducible across runs and Go versions,
// so we implement the generators ourselves (SplitMix64 for seeding and
// xoshiro256** for the main stream) rather than rely on math/rand, whose
// default source and seeding behaviour have changed between releases.
//
// Streams are identified by a string label. Deriving a stream from a parent
// hashes the label into the seed, so independently labelled components
// (arrival process, security levels, failure draws, GA operators, ...)
// receive decorrelated streams and can be added or removed without
// perturbing one another. This is the standard substream discipline for
// discrete-event simulation experiments.
//
// DESIGN.md §1.1 inventory row: deterministic random streams (xoshiro256**): labelled substreams, per-worker forks, 2^128 jump-ahead.
package rng
