package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seeds diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams with different seeds collided %d/1000 times", same)
	}
}

func TestDeriveDeterministic(t *testing.T) {
	a := New(7).Derive("arrivals")
	b := New(7).Derive("arrivals")
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Derive with same label not deterministic")
		}
	}
}

func TestDeriveIndependent(t *testing.T) {
	parent := New(7)
	a := parent.Derive("arrivals")
	b := parent.Derive("failures")
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("derived streams collided %d/1000 times", same)
	}
}

func TestDeriveIndexed(t *testing.T) {
	parent := New(9)
	a := parent.DeriveIndexed("site", 0)
	b := parent.DeriveIndexed("site", 1)
	if a.Uint64() == b.Uint64() {
		t.Fatal("indexed derivations should differ")
	}
	c := parent.DeriveIndexed("site", 0)
	a2 := parent.DeriveIndexed("site", 0)
	if c.Uint64() != a2.Uint64() {
		t.Fatal("indexed derivation not deterministic")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 100000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(4)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	seen := make(map[int]int)
	for i := 0; i < 60000; i++ {
		v := r.Intn(6)
		if v < 0 || v >= 6 {
			t.Fatalf("Intn(6) out of range: %d", v)
		}
		seen[v]++
	}
	for k := 0; k < 6; k++ {
		if seen[k] < 8000 || seen[k] > 12000 {
			t.Fatalf("Intn(6) value %d seen %d times; badly skewed", k, seen[k])
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnOne(t *testing.T) {
	r := New(8)
	for i := 0; i < 100; i++ {
		if r.Intn(1) != 0 {
			t.Fatal("Intn(1) must return 0")
		}
	}
}

func TestMul64(t *testing.T) {
	cases := []struct {
		a, b, hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{1 << 32, 1 << 32, 1, 0},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(6)
	check := func(n uint8) bool {
		size := int(n%50) + 1
		p := r.Perm(size)
		if len(p) != size {
			return false
		}
		seen := make([]bool, size)
		for _, v := range p {
			if v < 0 || v >= size || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	r := New(11)
	s := []int{1, 2, 3, 4, 5, 6, 7}
	sum := 0
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	for _, v := range s {
		sum += v
	}
	if sum != 28 {
		t.Fatalf("shuffle lost elements: %v", s)
	}
}

func TestUniform(t *testing.T) {
	r := New(12)
	for i := 0; i < 10000; i++ {
		v := r.Uniform(0.4, 1.0)
		if v < 0.4 || v >= 1.0 {
			t.Fatalf("Uniform(0.4,1.0) out of range: %v", v)
		}
	}
}

func TestExpMean(t *testing.T) {
	r := New(13)
	const rate = 0.008
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.Exp(rate)
		if v < 0 {
			t.Fatalf("Exp returned negative: %v", v)
		}
		sum += v
	}
	mean := sum / n
	want := 1 / rate
	if math.Abs(mean-want)/want > 0.02 {
		t.Fatalf("Exp mean %v, want ~%v", mean, want)
	}
}

func TestExpPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(0) should panic")
		}
	}()
	New(1).Exp(0)
}

func TestNormalMoments(t *testing.T) {
	r := New(14)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Normal(10, 3)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Fatalf("Normal mean %v, want ~10", mean)
	}
	if math.Abs(math.Sqrt(variance)-3) > 0.05 {
		t.Fatalf("Normal stddev %v, want ~3", math.Sqrt(variance))
	}
}

func TestLogNormalMedian(t *testing.T) {
	r := New(15)
	const n = 100001
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = r.LogNormal(math.Log(600), 1.5)
	}
	// Median ≈ exp(mu) = 600. Find it with a rough selection.
	count := 0
	for _, v := range vals {
		if v < 600 {
			count++
		}
	}
	frac := float64(count) / n
	if frac < 0.48 || frac > 0.52 {
		t.Fatalf("LogNormal median off: %v of values below exp(mu)", frac)
	}
}

func TestTruncLogNormalBounds(t *testing.T) {
	r := New(16)
	for i := 0; i < 10000; i++ {
		v := r.TruncLogNormal(math.Log(600), 2.0, 1, 64800)
		if v < 1 || v > 64800 {
			t.Fatalf("TruncLogNormal out of bounds: %v", v)
		}
	}
}

func TestLevel(t *testing.T) {
	r := New(17)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := r.Level(20)
		if v < 1 || v > 20 {
			t.Fatalf("Level(20) out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 20 {
		t.Fatalf("Level(20) only produced %d distinct levels", len(seen))
	}
}

func TestWeightedChoice(t *testing.T) {
	r := New(18)
	w := []float64{1, 0, 3}
	counts := make([]int, 3)
	for i := 0; i < 40000; i++ {
		counts[r.WeightedChoice(w)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight index chosen %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if ratio < 2.7 || ratio > 3.3 {
		t.Fatalf("WeightedChoice ratio %v, want ~3", ratio)
	}
}

func TestWeightedChoicePanics(t *testing.T) {
	for _, w := range [][]float64{nil, {}, {0, 0}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("WeightedChoice(%v) should panic", w)
				}
			}()
			New(1).WeightedChoice(w)
		}()
	}
}

func TestBool(t *testing.T) {
	r := New(19)
	if r.Bool(0) {
		t.Fatal("Bool(0) must be false")
	}
	if !r.Bool(1) {
		t.Fatal("Bool(1) must be true")
	}
	n := 0
	for i := 0; i < 100000; i++ {
		if r.Bool(0.25) {
			n++
		}
	}
	if n < 23500 || n > 26500 {
		t.Fatalf("Bool(0.25) hit %d/100000", n)
	}
}

func TestHashLabelDistinct(t *testing.T) {
	labels := []string{"a", "b", "ab", "ba", "arrivals", "failures", "", "site/0", "site/1"}
	seen := make(map[uint64]string)
	for _, l := range labels {
		h := hashLabel(l)
		if prev, ok := seen[h]; ok {
			t.Fatalf("hash collision between %q and %q", prev, l)
		}
		seen[h] = l
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Intn(20)
	}
}
