package rng

import "testing"

// cloneBlock deep-copies a Block so a bulk path and the element-wise
// reference can be compared from identical states.
func cloneBlock(b *Block) *Block {
	c := *b
	return &c
}

// TestBlockFillMatchesNext pins the bulk contract: Fill produces
// exactly the draws repeated Next calls would, from any cursor
// alignment and for any length including the unrolled-loop tails.
func TestBlockFillMatchesNext(t *testing.T) {
	for _, misalign := range []int{0, 1, 2, 3} {
		for _, n := range []int{0, 1, 3, 4, 5, 63, 64, 65, 1000} {
			b := NewBlock(New(uint64(17 + n)))
			for i := 0; i < misalign; i++ {
				b.Next()
			}
			ref := cloneBlock(b)
			got := make([]uint64, n)
			b.Fill(got)
			for i := range got {
				if want := ref.Next(); got[i] != want {
					t.Fatalf("misalign %d n %d: Fill[%d] = %#x, want %#x", misalign, n, i, got[i], want)
				}
			}
			// The states must agree afterwards too: a second bulk read
			// continues the same sequence.
			if b.Next() != ref.Next() {
				t.Fatalf("misalign %d n %d: cursor diverged after Fill", misalign, n)
			}
		}
	}
}

// TestBlockFillBernoulliMatchesElementwise pins the bit-vector path to
// the element-wise threshold draw, including degenerate probabilities
// (which consume no draws, like Bernoulli.Hit) and partial last words.
func TestBlockFillBernoulliMatchesElementwise(t *testing.T) {
	probs := []float64{0, -1, 1, 2, 0.01, 0.5, 0.8, 1e-9, 1 - 1e-9}
	for _, p := range probs {
		bn := NewBernoulli(p)
		for _, misalign := range []int{0, 3} {
			for _, n := range []int{0, 1, 63, 64, 65, 130, 1000} {
				b := NewBlock(New(uint64(1234 + n)))
				for i := 0; i < misalign; i++ {
					b.Next()
				}
				ref := cloneBlock(b)
				words := (n + 63) / 64
				got := make([]uint64, words+1)
				got[words] = 0xdeadbeef // must not be touched
				b.FillBernoulli(got[:words], n, bn)
				for j := 0; j < n; j++ {
					var want bool
					switch {
					case bn.never:
						want = false
					case bn.always:
						want = true
					default:
						want = ref.Next()>>11 < bn.threshold
					}
					gotBit := got[j>>6]&(1<<uint(j&63)) != 0
					if gotBit != want {
						t.Fatalf("p=%v misalign=%d n=%d: bit %d = %v, want %v", p, misalign, n, j, gotBit, want)
					}
				}
				// Tail bits beyond count stay zero so callers can popcount
				// whole words.
				if n&63 != 0 && words > 0 {
					if tail := got[words-1] >> uint(n&63); tail != 0 {
						t.Fatalf("p=%v n=%d: tail bits set: %#x", p, n, tail)
					}
				}
				if got[words] != 0xdeadbeef {
					t.Fatalf("p=%v n=%d: wrote past the word count", p, n)
				}
				// Draw-count parity: the next draws must line up.
				if !bn.never && !bn.always && n > 0 {
					if b.Next() != ref.Next() {
						t.Fatalf("p=%v misalign=%d n=%d: draw cursor diverged", p, misalign, n)
					}
				}
			}
		}
	}
}

// TestDrawsV2LanesPairwiseDisjoint checks the per-phase lanes (and the
// mutation Block's stripes) are decorrelated: across the first 512
// draws of each, no 64-bit value appears in two different lanes. A
// collision among these ~4600 draws has probability ~2^-51 under
// independence, so any overlap means two lanes share a state.
func TestDrawsV2LanesPairwiseDisjoint(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		d := NewDrawsV2(New(seed))
		const k = 512
		lanes := map[string][]uint64{
			"init":   drawN(d.Init, k),
			"select": drawN(d.Select, k),
			"cross":  drawN(d.Cross, k),
			"mutval": drawN(d.MutVal, k),
		}
		mutbits := make([]uint64, k)
		d.MutBit.Fill(mutbits)
		lanes["mutbit"] = mutbits
		seen := make(map[uint64]string, 5*k)
		for name, vals := range lanes {
			for _, v := range vals {
				if other, ok := seen[v]; ok && other != name {
					t.Fatalf("seed %d: value %#x appears in lanes %s and %s", seed, v, other, name)
				}
				seen[v] = name
			}
		}
	}
}

// TestNewDrawsV2DoesNotAdvanceParent pins the property the versioned
// contract depends on: splitting the run stream into lanes must not
// perturb the run stream's own sequence (the STGA keeps drawing
// batch-level decisions from it).
func TestNewDrawsV2DoesNotAdvanceParent(t *testing.T) {
	a, b := New(42), New(42)
	NewDrawsV2(a)
	for i := 0; i < 64; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("NewDrawsV2 advanced the parent stream (draw %d)", i)
		}
	}
}

func drawN(r *Stream, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = r.Uint64()
	}
	return out
}

// TestParseVersion pins the user-facing numbering and the zero-value
// default.
func TestParseVersion(t *testing.T) {
	cases := []struct {
		in      int
		want    Version
		wantErr bool
	}{
		{0, V1, false}, {1, V1, false}, {2, V2, false}, {3, 0, true}, {-1, 0, true},
	}
	for _, c := range cases {
		got, err := ParseVersion(c.in)
		if (err != nil) != c.wantErr || got != c.want {
			t.Fatalf("ParseVersion(%d) = (%v, %v), want (%v, err=%v)", c.in, got, err, c.want, c.wantErr)
		}
	}
	if V1.Num() != 1 || V2.Num() != 2 || V1.String() != "v1" || V2.String() != "v2" {
		t.Fatalf("version naming drifted: %v %v", V1, V2)
	}
}
