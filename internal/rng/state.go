package rng

// State is the serializable form of a Stream: the four xoshiro256**
// state words in order. Capturing and restoring it reproduces the
// stream's future output exactly, which is what lets an engine snapshot
// resume mid-sequence — the recovery parity contract depends on every
// post-restore draw matching the draw the uninterrupted run would have
// made. The words round-trip exactly through encoding/json because they
// decode into uint64 fields directly (no float64 intermediate).
type State [4]uint64

// State captures the stream's current position.
func (r *Stream) State() State {
	return State{r.s0, r.s1, r.s2, r.s3}
}

// SetState repositions the stream. The next Uint64 equals what a stream
// that originally reached s would produce next.
func (r *Stream) SetState(s State) {
	r.s0, r.s1, r.s2, r.s3 = s[0], s[1], s[2], s[3]
}

// FromState builds a stream positioned at s.
func FromState(s State) *Stream {
	r := &Stream{}
	r.SetState(s)
	return r
}
