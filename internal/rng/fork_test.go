package rng

import "testing"

func TestForkDeterministic(t *testing.T) {
	a := New(42).Fork(3)
	b := New(42).Fork(3)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Fork with same (state, index) not deterministic")
		}
	}
}

func TestForkSiblingsIndependent(t *testing.T) {
	parent := New(7)
	streams := make([]*Stream, 8)
	for i := range streams {
		streams[i] = parent.Fork(i)
	}
	for i := 0; i < len(streams); i++ {
		for k := i + 1; k < len(streams); k++ {
			a, b := *streams[i], *streams[k] // copies: don't advance the originals
			same := 0
			for n := 0; n < 1000; n++ {
				if a.Uint64() == b.Uint64() {
					same++
				}
			}
			if same > 0 {
				t.Fatalf("forks %d and %d collided %d/1000 times", i, k, same)
			}
		}
	}
}

func TestForkDoesNotAdvanceParent(t *testing.T) {
	a := New(11)
	b := New(11)
	for i := 0; i < 50; i++ {
		a.Fork(i)
	}
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Fork perturbed the parent stream")
		}
	}
}

func TestForkIndependentOfParent(t *testing.T) {
	parent := New(13)
	child := parent.Fork(0)
	same := 0
	for i := 0; i < 1000; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("fork collided with parent %d/1000 times", same)
	}
}

func TestForkDependsOnState(t *testing.T) {
	a := New(17)
	early := a.Fork(0)
	a.Uint64()
	late := a.Fork(0)
	if early.Uint64() == late.Uint64() {
		t.Fatal("forks taken at different parent states should differ")
	}
}

func TestJumpDeterministic(t *testing.T) {
	a, b := New(5), New(5)
	a.Jump()
	b.Jump()
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Jump not deterministic")
		}
	}
}

func TestJumpDecorrelates(t *testing.T) {
	a := New(5)
	jumped := New(5)
	jumped.Jump()
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == jumped.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("jumped stream collided with original %d/1000 times", same)
	}
}

func TestJumpChangesState(t *testing.T) {
	a := New(23)
	before := *a
	a.Jump()
	if *a == before {
		t.Fatal("Jump left the state unchanged")
	}
}
