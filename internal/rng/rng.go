package rng

import (
	"fmt"
	"math"
)

// splitMix64 advances a SplitMix64 state and returns the next output.
// It is used for seeding only.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// hashLabel folds a label string into a 64-bit value (FNV-1a).
func hashLabel(label string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= prime
	}
	return h
}

// Stream is a deterministic pseudo-random stream (xoshiro256**).
// It is not safe for concurrent use; derive one stream per goroutine.
// The four state words are named fields rather than an array so the
// Uint64 step stays within the compiler's inlining budget (see Uint64).
type Stream struct {
	s0, s1, s2, s3 uint64
}

// New creates a stream from a 64-bit seed. Any seed, including zero, yields
// a valid, well-mixed state.
func New(seed uint64) *Stream {
	sm := seed
	return &Stream{
		s0: splitMix64(&sm),
		s1: splitMix64(&sm),
		s2: splitMix64(&sm),
		s3: splitMix64(&sm),
	}
}

// Derive returns an independent child stream identified by label. The same
// (parent seed, label) pair always yields the same child stream.
func (r *Stream) Derive(label string) *Stream {
	// Mix the parent's *initial-equivalent* entropy with the label hash.
	// We hash the current state so sibling derivations at different times
	// differ; callers wanting stable siblings should derive all children
	// up front (the simulator does).
	seed := r.s0 ^ (r.s1 << 1) ^ hashLabel(label)
	return New(seed)
}

// DeriveIndexed returns an independent child stream identified by a label
// and an integer index, e.g. one stream per site or per batch.
func (r *Stream) DeriveIndexed(label string, index int) *Stream {
	return r.Derive(fmt.Sprintf("%s/%d", label, index))
}

// Fork returns the i-th member of a family of independent child streams
// rooted at the receiver's current state. Unlike Derive it takes no
// label and does not format strings, so it is cheap enough to call once
// per worker per batch. Fork is a pure function of (state, i): it never
// advances the parent, so a master stream can hand decorrelated streams
// to any number of parallel workers without perturbing its own future
// output — the discipline that keeps parallel and serial execution
// bit-identical.
func (r *Stream) Fork(i int) *Stream {
	// Fold the full 256-bit state and the index into a SplitMix64 seed.
	// The rotations keep sibling states from cancelling; the golden-ratio
	// multiplier separates adjacent indices by a full avalanche.
	sm := r.s0 ^ rotl(r.s1, 13) ^ rotl(r.s2, 27) ^ rotl(r.s3, 41) ^
		(uint64(i)+1)*0x9e3779b97f4a7c15
	return &Stream{
		s0: splitMix64(&sm),
		s1: splitMix64(&sm),
		s2: splitMix64(&sm),
		s3: splitMix64(&sm),
	}
}

// jumpPoly is the xoshiro256** 2^128-step jump polynomial.
var jumpPoly = [4]uint64{0x180ec6d33cfd0aba, 0xd5a61266f0c9392c, 0xa9582618e03fc9aa, 0x39abdc4529b1661c}

// Jump advances the stream by 2^128 steps in O(256) work. 2^128
// non-overlapping subsequences of length 2^128 each make Jump the
// classical partitioning alternative to Fork when a caller wants
// provably disjoint output ranges rather than hash-decorrelated ones.
func (r *Stream) Jump() {
	var s0, s1, s2, s3 uint64
	for _, jp := range jumpPoly {
		for b := 0; b < 64; b++ {
			if jp&(1<<uint(b)) != 0 {
				s0 ^= r.s0
				s1 ^= r.s1
				s2 ^= r.s2
				s3 ^= r.s3
			}
			r.Uint64()
		}
	}
	r.s0, r.s1, r.s2, r.s3 = s0, s1, s2, s3
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits. The body is the
// standard xoshiro256** step spelled out with locals and literal
// rotations so it fits the compiler's inlining budget: Bool/Float64/
// Intn sit in the GA's per-gene hot loops (mutation alone draws one
// Bool per gene per individual per generation), and inlining the whole
// chain removes a call per draw. The state transition is identical to
// the textbook formulation, so every stream produces the same sequence
// as before.
func (r *Stream) Uint64() uint64 {
	s1 := r.s1
	x := s1 * 5
	result := ((x << 7) | (x >> 57)) * 9
	s2 := r.s2 ^ r.s0
	s3 := r.s3 ^ s1
	r.s1 = s1 ^ s2
	r.s0 ^= s3
	r.s2 = s2 ^ (s1 << 17)
	r.s3 = (s3 << 45) | (s3 >> 19)
	return result
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Stream) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	// Lemire's nearly-divisionless method with rejection for exactness.
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	aLo, aHi := a&mask32, a>>32
	bLo, bHi := b&mask32, b>>32
	t := aLo * bLo
	lo = t & mask32
	c := t >> 32
	t = aHi*bLo + c
	mid := t & mask32
	hiPart := t >> 32
	t = aLo*bHi + mid
	lo |= (t & mask32) << 32
	hi = aHi*bHi + hiPart + (t >> 32)
	return hi, lo
}

// Perm returns a random permutation of [0, n) (Fisher–Yates).
func (r *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n elements using swap, as in math/rand.
func (r *Stream) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Uniform returns a uniform float64 in [lo, hi).
func (r *Stream) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Bool returns true with probability p.
func (r *Stream) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Bernoulli is a precomputed Bool(p): Hit consumes exactly the draws
// Bool(p) would and returns the identical answer, but replaces the
// per-draw float conversion, division and comparison with one integer
// compare against a precomputed threshold. Build one outside a hot loop
// (the GA's mutation operator draws one Bool per gene per individual
// per generation, which makes Bool the single hottest call in the
// repository).
type Bernoulli struct {
	threshold     uint64
	always, never bool
}

// NewBernoulli precomputes the comparator for probability p.
//
// Bool's draw is Float64() < p with Float64() = y/2^53 for the integer
// y = Uint64()>>11, and division by 2^53 is exact, so the draw hits iff
// y < p·2^53 in real arithmetic — iff y < ⌈p·2^53⌉ for integer y.
// Ldexp(p, 53) scales by a power of two, which is also exact for every
// p in (0, 1), so the threshold below is the exact ceiling and Hit
// reproduces Bool bit-for-bit.
func NewBernoulli(p float64) Bernoulli {
	if p <= 0 {
		return Bernoulli{never: true}
	}
	if p >= 1 {
		return Bernoulli{always: true}
	}
	return Bernoulli{threshold: uint64(math.Ceil(math.Ldexp(p, 53)))}
}

// Hit draws from r and reports success. It consumes one Uint64 when
// 0 < p < 1 and none otherwise, exactly like Bool(p).
func (b Bernoulli) Hit(r *Stream) bool {
	if b.never {
		return false
	}
	if b.always {
		return true
	}
	return r.Uint64()>>11 < b.threshold
}

// Exp returns an exponential variate with the given rate (mean 1/rate).
// It panics if rate <= 0.
func (r *Stream) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exp called with rate <= 0")
	}
	// Inverse-CDF; 1-Float64() is in (0,1] so Log never sees zero.
	return -math.Log(1-r.Float64()) / rate
}

// Normal returns a normal variate with the given mean and standard
// deviation (Box–Muller, using a cached second value would break
// determinism under Derive ordering, so we recompute each call).
func (r *Stream) Normal(mean, stddev float64) float64 {
	u1 := 1 - r.Float64() // (0,1]
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// LogNormal returns a log-normal variate where the underlying normal has
// the given mu and sigma (so the median is exp(mu)).
func (r *Stream) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}

// TruncLogNormal returns a log-normal variate clamped to [lo, hi].
func (r *Stream) TruncLogNormal(mu, sigma, lo, hi float64) float64 {
	v := r.LogNormal(mu, sigma)
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Level returns a uniformly chosen discrete level in {1, ..., n}.
func (r *Stream) Level(n int) int {
	return 1 + r.Intn(n)
}

// WeightedChoice returns an index in [0, len(weights)) with probability
// proportional to weights[i]. It panics if the weights are empty,
// negative, or sum to zero.
func (r *Stream) WeightedChoice(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w < 0 || math.IsNaN(w) {
			panic("rng: WeightedChoice with negative or NaN weight")
		}
		total += w
	}
	if len(weights) == 0 || total <= 0 {
		panic("rng: WeightedChoice with empty or zero-sum weights")
	}
	x := r.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1 // float round-off
}
