package rng

import "fmt"

// Version names a draw-sequence contract. Everything that replays,
// fingerprints or shards a run — GA configs, fleet specs, WAL
// snapshots — carries a Version, because two processes drawing under
// different contracts produce different (both individually valid)
// schedules: mixing them in one fleet or resuming a v1 WAL under v2
// would silently break determinism, so both are refused at the
// fingerprint layer.
//
// The zero value means V1. That is deliberate: v1 runs serialize the
// field as absent (`omitempty`), so every spec fingerprint and WAL
// written before versions existed still verifies, and "no version" ≡
// "version 1" forever.
type Version int

const (
	// V1 is the original contract: one serial stream threaded through
	// every GA phase in loop order. It is the default and is pinned by
	// every golden and parity test predating DrawsV2.
	V1 Version = 0
	// V2 is the batched contract (DrawsV2): independent per-phase lanes
	// forked from the run stream, with mutation hits drawn as
	// Bernoulli bit vectors from a 4-stripe Block. Faster, and
	// deliberately not draw-compatible with V1.
	V2 Version = 2
)

// ParseVersion maps the user-facing numbering (1 and 2, as in the
// daemon's -rng-version flag) onto the internal representation, where
// 0 and 1 both mean V1.
func ParseVersion(n int) (Version, error) {
	switch n {
	case 0, 1:
		return V1, nil
	case 2:
		return V2, nil
	default:
		return 0, fmt.Errorf("rng: unknown draw version %d (have 1, 2)", n)
	}
}

// Num returns the user-facing version number: 1 for V1, 2 for V2.
func (v Version) Num() int {
	if v == V2 {
		return 2
	}
	return 1
}

// String returns "v1" or "v2".
func (v Version) String() string { return fmt.Sprintf("v%d", v.Num()) }
