package rng

import (
	"fmt"
	"testing"
)

// window collects the next n outputs of a copy of s (the original is
// not advanced).
func window(s *Stream, n int) []uint64 {
	c := *s
	out := make([]uint64, n)
	for i := range out {
		out[i] = c.Uint64()
	}
	return out
}

// assertDisjointWindows fails if any 64-bit output appears in two of
// the windows. With 64-bit outputs and a few thousand samples, a single
// honest collision has probability ~2^-40; any overlap means the
// streams share a subsequence.
func assertDisjointWindows(t *testing.T, names []string, windows [][]uint64) {
	t.Helper()
	seen := make(map[uint64]int, len(windows)*len(windows[0]))
	for wi, w := range windows {
		for _, v := range w {
			if prev, dup := seen[v]; dup && prev != wi {
				t.Fatalf("streams %s and %s share output %#x", names[prev], names[wi], v)
			}
			seen[v] = wi
		}
	}
}

// TestForkWindowsPairwiseDisjoint is the stronger form of the sibling
// independence test: not only do forks disagree position-by-position,
// their sampled output windows are pairwise non-overlapping — no fork
// wanders into a sibling's subsequence at any offset within the window.
func TestForkWindowsPairwiseDisjoint(t *testing.T) {
	const forks, width = 16, 4096
	parent := New(99)
	names := make([]string, forks)
	windows := make([][]uint64, forks)
	for i := 0; i < forks; i++ {
		names[i] = fmt.Sprintf("Fork(%d)", i)
		windows[i] = window(parent.Fork(i), width)
	}
	assertDisjointWindows(t, names, windows)
}

// TestJumpIsFixedStride verifies the documented 2^128-stride semantics
// structurally: Jump is a fixed power of the engine's linear transition
// map, so it commutes with ordinary stepping — jumping then advancing n
// steps reaches exactly the state of advancing n steps then jumping.
// A Jump that were anything other than a constant T^k (for the one
// engine transition T) would fail this for some n.
func TestJumpIsFixedStride(t *testing.T) {
	for _, n := range []int{1, 7, 64, 1000} {
		a := New(123)
		a.Jump()
		for i := 0; i < n; i++ {
			a.Uint64()
		}
		b := New(123)
		for i := 0; i < n; i++ {
			b.Uint64()
		}
		b.Jump()
		for i := 0; i < 100; i++ {
			if a.Uint64() != b.Uint64() {
				t.Fatalf("n=%d: jump-then-step diverged from step-then-jump", n)
			}
		}
	}
}

// TestJumpPartitionsSequence: successive jumps partition the master
// sequence into blocks whose sampled windows never overlap — the
// classical use of Jump to hand out provably disjoint subsequences.
func TestJumpPartitionsSequence(t *testing.T) {
	const blocks, width = 8, 4096
	s := New(7)
	names := make([]string, blocks)
	windows := make([][]uint64, blocks)
	for i := 0; i < blocks; i++ {
		names[i] = fmt.Sprintf("jump^%d", i)
		windows[i] = window(s, width)
		s.Jump()
	}
	assertDisjointWindows(t, names, windows)
}

// codebaseLabels are the Derive/DeriveIndexed labels the repository
// actually uses (grep for `Derive(` when adding one). The injectivity
// test below is what lets every caller assume two distinct labels give
// two unrelated streams.
var codebaseLabels = []string{
	"cluster-ext", "engine", "engine/failtime", "engine/failures",
	"jobs", "loadgen", "nas/arrivals", "nas/runtimes", "nas/sd",
	"nas/sizes", "psa/arrivals", "psa/levels", "psa/sd", "random",
	"recpsa/arrivals", "recpsa/spec", "sched", "scheduler", "sites",
	"stga", "swf/sd", "training", "churn", "deceptive", "sd",
	// DeriveIndexed(label, i) expands to "label/i": cover the indexed
	// families alongside their neighbors.
	"churn/site/0", "churn/site/1", "churn/site/2",
	"batch/1", "batch/2", "batch/3",
}

// TestDeriveLabelInjective: across every label the codebase uses, the
// derived child streams are pairwise distinct and their sampled output
// windows are disjoint — no two subsystems ever consume the same
// randomness.
func TestDeriveLabelInjective(t *testing.T) {
	parent := New(1)
	windows := make([][]uint64, len(codebaseLabels))
	for i, label := range codebaseLabels {
		windows[i] = window(parent.Derive(label), 512)
	}
	assertDisjointWindows(t, codebaseLabels, windows)

	// And the derivation must not depend on sibling order: deriving the
	// same label twice (parent state unchanged in between) is identical.
	for _, label := range codebaseLabels {
		a, b := parent.Derive(label), parent.Derive(label)
		for i := 0; i < 64; i++ {
			if a.Uint64() != b.Uint64() {
				t.Fatalf("Derive(%q) not reproducible", label)
			}
		}
	}
}

// TestDeriveIndexedMatchesDerive pins the documented DeriveIndexed
// expansion so the label lists above stay meaningful.
func TestDeriveIndexedMatchesDerive(t *testing.T) {
	parent := New(42)
	a := parent.DeriveIndexed("churn/site", 3)
	b := parent.Derive("churn/site/3")
	for i := 0; i < 64; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("DeriveIndexed(label, i) != Derive(label/i)")
		}
	}
}
