package rng

// This file is the V2 draw contract. V1 threads one serial stream
// through every GA phase in loop order, which pins the whole loop to
// the latency of one xoshiro chain and welds the phases' draw counts
// together. V2 splits the run stream into per-phase lanes (Fork is a
// pure function of state and index, so the layout is stable) and draws
// the mutation hit mask as a Bernoulli bit vector from a 4-stripe
// Block, whose interleaved recurrences break the serial dependency
// chain: four independent states advance per loop iteration, so the
// CPU overlaps what V1 had to serialize.

// blockStripes is the Block interleave width. Part of the V2 contract:
// changing it changes every V2 draw sequence.
const blockStripes = 4

// Block generates the stream formed by interleaving blockStripes
// xoshiro256** stripes round-robin: draw k comes from stripe k mod 4.
// Next is the element-wise reference; Fill and FillBernoulli produce
// the identical sequence in bulk (property-tested), letting hot loops
// consume a slab of draws without a call per draw.
type Block struct {
	lane [blockStripes]Stream
	next int // stripe of the next element-wise draw
}

// NewBlock builds a Block whose stripes are r.Fork(0..3). It does not
// advance r.
func NewBlock(r *Stream) *Block {
	b := &Block{}
	for i := range b.lane {
		b.lane[i] = *r.Fork(i)
	}
	return b
}

// Next returns the next interleaved draw.
func (b *Block) Next() uint64 {
	v := b.lane[b.next].Uint64()
	b.next = (b.next + 1) % blockStripes
	return v
}

// Fill writes the next len(dst) draws into dst — exactly the values
// len(dst) Next calls would return, but generated four stripes at a
// time so the four recurrences pipeline.
func (b *Block) Fill(dst []uint64) {
	i := 0
	for b.next != 0 && i < len(dst) {
		dst[i] = b.Next()
		i++
	}
	l0, l1, l2, l3 := b.lane[0], b.lane[1], b.lane[2], b.lane[3]
	for ; i+blockStripes <= len(dst); i += blockStripes {
		dst[i] = l0.Uint64()
		dst[i+1] = l1.Uint64()
		dst[i+2] = l2.Uint64()
		dst[i+3] = l3.Uint64()
	}
	b.lane[0], b.lane[1], b.lane[2], b.lane[3] = l0, l1, l2, l3
	for ; i < len(dst); i++ {
		dst[i] = b.Next()
	}
}

// FillBernoulli draws count Bernoulli(bn) trials and packs them one
// bit per trial into dst, LSB-first: trial j lands in bit j&63 of
// dst[j>>6]. Trial j succeeds iff bn.Hit would succeed on the j-th
// element-wise draw; like Hit, degenerate probabilities (p ≤ 0, p ≥ 1)
// consume no draws. dst must have at least (count+63)/64 words; words
// are fully overwritten, with tail bits past count left zero (or one
// for p ≥ 1 within the last partial word's valid range only).
func (b *Block) FillBernoulli(dst []uint64, count int, bn Bernoulli) {
	words := (count + 63) >> 6
	if bn.never || bn.always {
		var fill uint64
		if bn.always {
			fill = ^uint64(0)
		}
		for w := 0; w < words; w++ {
			dst[w] = fill
		}
		if bn.always && count&63 != 0 {
			dst[words-1] &= (1 << uint(count&63)) - 1
		}
		return
	}
	thr := bn.threshold
	for w := 0; w < words; w++ {
		var word uint64
		nbits := count - w<<6
		if nbits >= 64 && b.next == 0 {
			// Aligned full word. Within a word, stripe j owns bits
			// j, j+4, j+8, … — and the stripes are independent streams,
			// so the word can be assembled one stripe at a time: 16
			// draws from a single stripe whose four state words (plus
			// the bit accumulator) fit in registers, where interleaving
			// all four stripes spills 16 state words to the stack. Each
			// stripe's bits rotate in through the top (constant shift
			// counts — variable shifts serialize on CL under GOAMD64=v1):
			// iteration k's bit lands at 4k after 15−k right-shifts, and
			// the stripe's accumulator slides left j to its home lane.
			// v>>11 < thr ⟺ v < thr<<11: thr < 2⁵³ for non-degenerate
			// probabilities (NewBernoulli), so the shift cannot overflow
			// and the raw draws compare directly.
			rawThr := thr << 11
			for j := range b.lane {
				l := b.lane[j]
				var acc uint64
				for k := 0; k < 64/blockStripes; k++ {
					acc = acc>>4 | b2u(l.Uint64() < rawThr)<<60
				}
				b.lane[j] = l
				word |= acc << uint(j)
			}
			nbits = 64
		} else {
			if nbits > 64 {
				nbits = 64
			}
			for k := uint(0); k < uint(nbits); k++ {
				word |= b2u(b.Next()>>11 < thr) << k
			}
		}
		dst[w] = word
	}
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// V2 lane indices: the Fork offsets of each GA phase's stream under
// the DrawsV2 contract. Stable — reordering them is a new version.
const (
	laneInit   = 0 // population construction and chromosome repair
	laneSelect = 1 // parent selection
	laneCross  = 2 // crossover gates and cut points
	laneMutVal = 3 // replacement gene values for mutation hits
	laneMutBit = 4 // Block root for the mutation hit mask
)

// DrawsV2 is the per-run draw layout of the V2 contract: one
// independent lane per GA phase, all forked from the run stream, so
// no phase's draw count perturbs another phase's sequence and each
// lane can be consumed in bulk.
type DrawsV2 struct {
	Init   *Stream // population construction and repair
	Select *Stream // parent selection
	Cross  *Stream // crossover gates and cut points
	MutVal *Stream // replacement values for mutation hits
	MutBit *Block  // batched Bernoulli mutation hit mask
}

// NewDrawsV2 splits r into the five V2 lanes. It does not advance r.
func NewDrawsV2(r *Stream) *DrawsV2 {
	return &DrawsV2{
		Init:   r.Fork(laneInit),
		Select: r.Fork(laneSelect),
		Cross:  r.Fork(laneCross),
		MutVal: r.Fork(laneMutVal),
		MutBit: NewBlock(r.Fork(laneMutBit)),
	}
}
