package trace

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"trustgrid/internal/grid"
)

// SWFRecord is one job line of a Standard Workload Format file. Only the
// fields the simulator consumes are retained; -1 encodes "unknown" as in
// the format specification.
type SWFRecord struct {
	JobID      int
	Submit     float64 // seconds since trace start
	Wait       float64 // seconds (ignored by the simulator; kept for stats)
	Runtime    float64 // seconds
	Processors int
}

// ParseSWF reads an SWF stream: ';' comment lines, then whitespace-
// separated records with at least 5 fields (job, submit, wait, run, procs).
// Records with unknown (-1) runtime or processor count are skipped, as is
// conventional when replaying archive traces.
func ParseSWF(r io.Reader) ([]SWFRecord, error) {
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 64*1024), 1024*1024)
	var out []SWFRecord
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, ";") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 5 {
			return nil, fmt.Errorf("trace: SWF line %d has %d fields, need >= 5", lineNo, len(fields))
		}
		var vals [5]float64
		for i := 0; i < 5; i++ {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("trace: SWF line %d field %d: %v", lineNo, i+1, err)
			}
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("trace: SWF line %d field %d is %v", lineNo, i+1, v)
			}
			vals[i] = v
		}
		// Bound the integral fields before converting: float→int
		// conversion out of range is implementation-defined, and a job ID
		// or processor count beyond 2^30 is corrupt data, not a workload.
		if vals[0] != math.Trunc(vals[0]) || math.Abs(vals[0]) > float64(1<<30) {
			return nil, fmt.Errorf("trace: SWF line %d has bad job id %q", lineNo, fields[0])
		}
		if vals[4] != math.Trunc(vals[4]) || math.Abs(vals[4]) > float64(1<<30) {
			return nil, fmt.Errorf("trace: SWF line %d has bad processor count %q", lineNo, fields[4])
		}
		if vals[1] < 0 {
			return nil, fmt.Errorf("trace: SWF line %d has negative submit time %v", lineNo, vals[1])
		}
		rec := SWFRecord{
			JobID:      int(vals[0]),
			Submit:     vals[1],
			Wait:       vals[2],
			Runtime:    vals[3],
			Processors: int(vals[4]),
		}
		if rec.Runtime < 0 || rec.Processors <= 0 {
			continue // unknown runtime / procs: cannot simulate
		}
		out = append(out, rec)
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("trace: reading SWF: %w", err)
	}
	return out, nil
}

// WriteSWF writes records in Standard Workload Format with the 18 standard
// columns (unused ones set to -1), so emitted synthetic traces can be
// consumed by other archive tools.
func WriteSWF(w io.Writer, header string, recs []SWFRecord) error {
	bw := bufio.NewWriter(w)
	for _, line := range strings.Split(strings.TrimRight(header, "\n"), "\n") {
		if line != "" {
			if _, err := fmt.Fprintf(bw, "; %s\n", line); err != nil {
				return err
			}
		}
	}
	for _, r := range recs {
		// job submit wait run procs cpu mem reqProcs reqTime reqMem
		// status user group app queue partition prevJob thinkTime
		if _, err := fmt.Fprintf(bw, "%d %.2f %.2f %.2f %d -1 -1 %d %.2f -1 1 -1 -1 -1 -1 -1 -1 -1\n",
			r.JobID, r.Submit, r.Wait, r.Runtime, r.Processors, r.Processors, r.Runtime); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// JobsFromSWF converts SWF records into simulator jobs. Workload is
// runtime × processors (node-seconds) under the aggregate-speed site model;
// security demands are drawn from sd. Records are assumed sorted by
// submit time (archive traces are); out-of-order records are sorted by
// the caller if needed. timeScale compresses the submit axis (the paper
// squeezes 92 days to 46, i.e. timeScale = 0.5).
func JobsFromSWF(recs []SWFRecord, timeScale float64, sd func(i int) float64) []*grid.Job {
	jobs := make([]*grid.Job, 0, len(recs))
	for i, r := range recs {
		runtime := r.Runtime
		if runtime <= 0 {
			runtime = 1 // zero-runtime accounting records: clamp to 1s
		}
		jobs = append(jobs, &grid.Job{
			ID:             i,
			Arrival:        r.Submit * timeScale,
			Workload:       runtime * float64(r.Processors),
			Nodes:          r.Processors,
			SecurityDemand: sd(i),
		})
	}
	return jobs
}
