// Package trace provides the workload substrate: a parser and writer for
// the Standard Workload Format (SWF) used by the Parallel Workloads
// Archive, a synthetic generator calibrated to the NASA Ames iPSC/860
// trace the paper uses (see DESIGN.md §4 for the substitution rationale),
// and the PSA (parameter-sweep application) generator of Table 1.
//
// DESIGN.md §1.1 inventory row: workloads: synthetic NAS iPSC/860 generator, SWF parser/writer, PSA generator, recurrent PSA.
package trace
