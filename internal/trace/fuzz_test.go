package trace

import (
	"bytes"
	"math"
	"reflect"
	"testing"
)

// The fuzz contract of every trace parser: arbitrary input must produce
// either an error or a slice of simulable records — never a panic — and
// the record→job conversions must yield jobs that pass Validate. Seed
// corpora live under testdata/fuzz/; CI runs each target briefly on
// every PR (-fuzztime smoke) and the corpus regression always runs with
// plain `go test`.

func FuzzParseSWF(f *testing.F) {
	f.Add([]byte("; comment\n1 0.0 5 120 8 -1 -1 8 120 -1 1 -1 -1 -1 -1 -1 -1 -1\n"))
	f.Add([]byte("2 10 0 -1 4\n3 11 0 60 -1\n"))
	f.Add([]byte(""))
	f.Add([]byte("1 2 3 4"))
	f.Add([]byte("NaN NaN NaN NaN NaN"))
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := ParseSWF(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i, r := range recs {
			if r.Runtime < 0 || r.Processors <= 0 {
				t.Fatalf("record %d not simulable: %+v", i, r)
			}
			if r.Submit < 0 || math.IsNaN(r.Submit) || math.IsInf(r.Submit, 0) {
				t.Fatalf("record %d has bad submit: %+v", i, r)
			}
		}
		for i, j := range JobsFromSWF(recs, 0.5, func(int) float64 { return 0.7 }) {
			if err := j.Validate(); err != nil {
				t.Fatalf("job %d from accepted SWF is invalid: %v", i, err)
			}
		}
	})
}

func FuzzParseNAS(f *testing.F) {
	f.Add([]byte("; accounting\n0 8 120.5\n30 128 3600\n"))
	f.Add([]byte("60 -1 100\n90 16 -1\n"))
	f.Add([]byte("1 2"))
	f.Add([]byte("1e9 1 0\n"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := ParseNAS(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i, r := range recs {
			if r.Nodes <= 0 || r.Runtime < 0 || r.Submit < 0 {
				t.Fatalf("record %d not simulable: %+v", i, r)
			}
		}
		for i, j := range JobsFromNAS(recs, func(int) float64 { return 0.8 }) {
			if err := j.Validate(); err != nil {
				t.Fatalf("job %d from accepted NAS is invalid: %v", i, err)
			}
		}
	})
}

func FuzzParsePSA(f *testing.F) {
	f.Add([]byte("id,arrival,workload,nodes,sd\n0,12.5,15000,1,0.65\n"))
	f.Add([]byte("# comment\n1,0,300000,1,0.9\n"))
	f.Add([]byte("1,2,3\n"))
	f.Add([]byte("0,0,1,1,0\n0,0,1,1,1\n"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		jobs, err := ParsePSA(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i, j := range jobs {
			if err := j.Validate(); err != nil {
				t.Fatalf("accepted PSA job %d is invalid: %v", i, err)
			}
		}
		// Accepted campaigns round-trip bit-exactly through WritePSA.
		var buf bytes.Buffer
		if err := WritePSA(&buf, jobs); err != nil {
			t.Fatal(err)
		}
		back, err := ParsePSA(&buf)
		if err != nil {
			t.Fatalf("re-parsing written campaign: %v", err)
		}
		if len(back) != len(jobs) {
			t.Fatalf("round trip changed job count: %d vs %d", len(back), len(jobs))
		}
		for i := range jobs {
			if !reflect.DeepEqual(back[i], jobs[i]) {
				t.Fatalf("job %d differs after round trip: %+v vs %+v", i, back[i], jobs[i])
			}
		}
	})
}
