package trace

import (
	"bytes"
	"math"
	"sort"
	"strings"
	"testing"

	"trustgrid/internal/grid"
	"trustgrid/internal/rng"
)

func TestParseSWF(t *testing.T) {
	input := `; Comment line
; Another: header
1 0.0 5.0 100.0 8 -1 -1 8 100 -1 1 3 -1 -1 -1 -1 -1 -1
2 10.0 0.0 200.0 16
3 20.0 0.0 -1 16
4 30.0 0.0 50.0 -1
5 40.5 2.5 75.25 32
`
	recs, err := ParseSWF(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("parsed %d records, want 3 (unknown runtime/procs skipped)", len(recs))
	}
	if recs[0].JobID != 1 || recs[0].Runtime != 100 || recs[0].Processors != 8 {
		t.Fatalf("record 0 wrong: %+v", recs[0])
	}
	if recs[2].Submit != 40.5 || recs[2].Runtime != 75.25 {
		t.Fatalf("record 2 wrong: %+v", recs[2])
	}
}

func TestParseSWFErrors(t *testing.T) {
	if _, err := ParseSWF(strings.NewReader("1 2 3\n")); err == nil {
		t.Fatal("short line should error")
	}
	if _, err := ParseSWF(strings.NewReader("a b c d e\n")); err == nil {
		t.Fatal("non-numeric field should error")
	}
}

func TestSWFRoundTrip(t *testing.T) {
	recs := []SWFRecord{
		{JobID: 1, Submit: 0, Wait: 1, Runtime: 100, Processors: 8},
		{JobID: 2, Submit: 50.5, Wait: 0, Runtime: 3600, Processors: 128},
	}
	var buf bytes.Buffer
	if err := WriteSWF(&buf, "Synthetic NAS trace\nGenerator: trustgrid", recs); err != nil {
		t.Fatal(err)
	}
	got, err := ParseSWF(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("round trip lost records: %d vs %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i].JobID != recs[i].JobID || got[i].Runtime != recs[i].Runtime ||
			got[i].Processors != recs[i].Processors {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, got[i], recs[i])
		}
	}
}

func TestJobsFromSWF(t *testing.T) {
	recs := []SWFRecord{
		{JobID: 7, Submit: 100, Runtime: 50, Processors: 4},
		{JobID: 8, Submit: 200, Runtime: 0, Processors: 2},
	}
	jobs := JobsFromSWF(recs, 0.5, func(i int) float64 { return 0.7 })
	if jobs[0].Arrival != 50 {
		t.Fatalf("timeScale not applied: %v", jobs[0].Arrival)
	}
	if jobs[0].Workload != 200 {
		t.Fatalf("workload = %v, want runtime*procs = 200", jobs[0].Workload)
	}
	if jobs[1].Workload != 2 { // zero runtime clamped to 1s × 2 procs
		t.Fatalf("zero runtime should clamp, got %v", jobs[1].Workload)
	}
	if jobs[0].SecurityDemand != 0.7 {
		t.Fatal("sd func not applied")
	}
	if jobs[0].ID != 0 || jobs[1].ID != 1 {
		t.Fatal("IDs must be re-assigned positionally")
	}
}

func TestNASGenerate(t *testing.T) {
	cfg := DefaultNASConfig()
	cfg.Jobs = 2000 // keep the test fast
	jobs, err := cfg.Generate(rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2000 {
		t.Fatalf("generated %d jobs, want 2000", len(jobs))
	}
	// Sorted arrivals within span.
	if !sort.SliceIsSorted(jobs, func(i, k int) bool { return jobs[i].Arrival < jobs[k].Arrival }) {
		t.Fatal("arrivals not sorted")
	}
	for _, j := range jobs {
		if err := j.Validate(); err != nil {
			t.Fatal(err)
		}
		if j.Arrival > cfg.Span {
			t.Fatalf("arrival %v beyond span %v", j.Arrival, cfg.Span)
		}
		// Power-of-two node counts in 1..128.
		if j.Nodes&(j.Nodes-1) != 0 || j.Nodes < 1 || j.Nodes > 128 {
			t.Fatalf("node count %d not a power of two in range", j.Nodes)
		}
		if j.SecurityDemand < 0.6 || j.SecurityDemand > 0.9 {
			t.Fatalf("SD %v outside Table 1 range", j.SecurityDemand)
		}
	}
	// Load calibration: total work == LoadFactor × TotalSpeed × Span.
	total := grid.TotalWorkload(jobs)
	want := cfg.LoadFactor * cfg.TotalSpeed * cfg.Span
	if math.Abs(total-want)/want > 1e-9 {
		t.Fatalf("total work %v, want calibrated %v", total, want)
	}
}

func TestNASSizeDistributionSkewsSmall(t *testing.T) {
	cfg := DefaultNASConfig()
	cfg.Jobs = 5000
	jobs, err := cfg.Generate(rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	small, large := 0, 0
	for _, j := range jobs {
		if j.Nodes <= 8 {
			small++
		}
		if j.Nodes >= 64 {
			large++
		}
	}
	if small <= large*3 {
		t.Fatalf("size distribution not skewed small: %d small vs %d large", small, large)
	}
}

func TestNASDeterministic(t *testing.T) {
	cfg := DefaultNASConfig()
	cfg.Jobs = 500
	a, _ := cfg.Generate(rng.New(9))
	b, _ := cfg.Generate(rng.New(9))
	for i := range a {
		if a[i].Arrival != b[i].Arrival || a[i].Workload != b[i].Workload ||
			a[i].SecurityDemand != b[i].SecurityDemand {
			t.Fatal("NAS generation not deterministic")
		}
	}
}

func TestNASDiurnalModulation(t *testing.T) {
	cfg := DefaultNASConfig()
	cfg.Jobs = 16000
	jobs, err := cfg.Generate(rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	// Bucket arrivals into day/night; daytime (8am–8pm) should dominate.
	day, night := 0, 0
	for _, j := range jobs {
		hour := math.Mod(j.Arrival, 24*3600) / 3600
		if hour >= 8 && hour < 20 {
			day++
		} else {
			night++
		}
	}
	if day <= night {
		t.Fatalf("diurnal modulation missing: %d day vs %d night arrivals", day, night)
	}
}

func TestNASValidate(t *testing.T) {
	cfg := DefaultNASConfig()
	cfg.Jobs = 0
	if _, err := cfg.Generate(rng.New(1)); err == nil {
		t.Fatal("zero jobs should fail")
	}
	cfg = DefaultNASConfig()
	cfg.DiurnalAmplitude = 1.0
	if err := cfg.Validate(); err == nil {
		t.Fatal("amplitude 1.0 should fail")
	}
	cfg = DefaultNASConfig()
	cfg.SDMin = 0.95
	cfg.SDMax = 0.6
	if err := cfg.Validate(); err == nil {
		t.Fatal("inverted SD range should fail")
	}
}

func TestPSAGenerate(t *testing.T) {
	cfg := DefaultPSAConfig(1000)
	jobs, err := cfg.Generate(rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1000 {
		t.Fatalf("generated %d jobs, want 1000", len(jobs))
	}
	unit := cfg.MaxWorkload / float64(cfg.Levels)
	levels := map[int]bool{}
	for _, j := range jobs {
		if err := j.Validate(); err != nil {
			t.Fatal(err)
		}
		if j.Nodes != 1 {
			t.Fatal("PSA jobs must be sequential")
		}
		level := j.Workload / unit
		if level != math.Trunc(level) || level < 1 || level > 20 {
			t.Fatalf("workload %v is not a whole level", j.Workload)
		}
		levels[int(level)] = true
	}
	if len(levels) < 18 {
		t.Fatalf("only %d workload levels sampled in 1000 jobs", len(levels))
	}
	// Poisson arrivals: mean interarrival ≈ 1/0.008 = 125s.
	st := Summarize(jobs)
	if math.Abs(st.MeanInterarr-125)/125 > 0.15 {
		t.Fatalf("mean interarrival %v, want ~125", st.MeanInterarr)
	}
}

func TestPSAArrivalsSorted(t *testing.T) {
	jobs, err := DefaultPSAConfig(500).Generate(rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	if !sort.SliceIsSorted(jobs, func(i, k int) bool { return jobs[i].Arrival < jobs[k].Arrival }) {
		t.Fatal("PSA arrivals must be sorted")
	}
}

func TestPSAValidate(t *testing.T) {
	cfg := DefaultPSAConfig(0)
	if _, err := cfg.Generate(rng.New(1)); err == nil {
		t.Fatal("zero jobs should fail")
	}
	cfg = DefaultPSAConfig(10)
	cfg.ArrivalRate = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative arrival rate should fail")
	}
}

func TestToSWFInvertsGeneration(t *testing.T) {
	cfg := DefaultNASConfig()
	cfg.Jobs = 100
	jobs, _ := cfg.Generate(rng.New(8))
	recs := ToSWF(jobs)
	back := JobsFromSWF(recs, 1.0, func(i int) float64 { return jobs[i].SecurityDemand })
	for i := range jobs {
		if math.Abs(back[i].Workload-jobs[i].Workload) > 1e-9*jobs[i].Workload {
			t.Fatalf("workload not preserved: %v vs %v", back[i].Workload, jobs[i].Workload)
		}
		if back[i].Nodes != jobs[i].Nodes {
			t.Fatal("nodes not preserved")
		}
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Jobs != 0 || s.TotalWork != 0 {
		t.Fatal("empty summary should be zero")
	}
}
