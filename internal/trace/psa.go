package trace

import (
	"fmt"

	"trustgrid/internal/grid"
	"trustgrid/internal/rng"
)

// PSAConfig generates a parameter-sweep application workload per Table 1:
// N independent sequential jobs (no precedence, one node each), Poisson
// arrivals at rate 0.008 jobs/s, workloads drawn from 20 discrete levels
// spanning (0, 300000] work units, and uniform security demands.
type PSAConfig struct {
	Jobs        int     // N (Table 1 baseline: 5000; figures sweep 1000–10000)
	ArrivalRate float64 // jobs per second (Table 1: 0.008)
	Levels      int     // number of workload levels (Table 1: 20)
	MaxWorkload float64 // workload of the top level (Table 1: 300000)
	SDMin       float64 // Table 1: 0.6
	SDMax       float64 // Table 1: 0.9
}

// DefaultPSAConfig returns the Table 1 configuration with N jobs.
func DefaultPSAConfig(n int) PSAConfig {
	return PSAConfig{
		Jobs:        n,
		ArrivalRate: 0.008,
		Levels:      20,
		MaxWorkload: 300000,
		SDMin:       0.6,
		SDMax:       0.9,
	}
}

// Validate checks the configuration.
func (c PSAConfig) Validate() error {
	switch {
	case c.Jobs <= 0:
		return fmt.Errorf("trace: PSA Jobs must be positive, got %d", c.Jobs)
	case c.ArrivalRate <= 0:
		return fmt.Errorf("trace: PSA ArrivalRate must be positive, got %v", c.ArrivalRate)
	case c.Levels <= 0:
		return fmt.Errorf("trace: PSA Levels must be positive, got %d", c.Levels)
	case c.MaxWorkload <= 0:
		return fmt.Errorf("trace: PSA MaxWorkload must be positive, got %v", c.MaxWorkload)
	case c.SDMin < 0 || c.SDMax > 1 || c.SDMin > c.SDMax:
		return fmt.Errorf("trace: PSA bad SD range [%v, %v]", c.SDMin, c.SDMax)
	}
	return nil
}

// Generate produces the PSA job list, sorted by arrival (the Poisson
// process is generated in order).
func (c PSAConfig) Generate(r *rng.Stream) ([]*grid.Job, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	arrivalsRng := r.Derive("psa/arrivals")
	levelRng := r.Derive("psa/levels")
	sdRng := r.Derive("psa/sd")

	unit := c.MaxWorkload / float64(c.Levels)
	jobs := make([]*grid.Job, c.Jobs)
	t := 0.0
	for i := range jobs {
		t += arrivalsRng.Exp(c.ArrivalRate)
		level := levelRng.Level(c.Levels) // 1..Levels, so workload > 0
		jobs[i] = &grid.Job{
			ID:             i,
			Arrival:        t,
			Workload:       float64(level) * unit,
			Nodes:          1,
			SecurityDemand: sdRng.Uniform(c.SDMin, c.SDMax),
		}
	}
	return jobs, nil
}

// Stats summarizes a job list; used by tests and the tracegen CLI.
type Stats struct {
	Jobs         int
	Span         float64 // last arrival
	TotalWork    float64
	MeanWork     float64
	MaxNodes     int
	MeanInterarr float64
}

// Summarize computes workload statistics.
func Summarize(jobs []*grid.Job) Stats {
	s := Stats{Jobs: len(jobs)}
	if len(jobs) == 0 {
		return s
	}
	prev := 0.0
	var interSum float64
	for _, j := range jobs {
		s.TotalWork += j.Workload
		if j.Nodes > s.MaxNodes {
			s.MaxNodes = j.Nodes
		}
		if j.Arrival > s.Span {
			s.Span = j.Arrival
		}
		interSum += j.Arrival - prev
		prev = j.Arrival
	}
	s.MeanWork = s.TotalWork / float64(len(jobs))
	s.MeanInterarr = interSum / float64(len(jobs))
	return s
}
