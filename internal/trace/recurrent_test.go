package trace

import (
	"testing"

	"trustgrid/internal/rng"
)

func TestRecurrentPSAGenerates(t *testing.T) {
	cfg := DefaultRecurrentPSAConfig(200)
	jobs, err := cfg.Generate(rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 200 {
		t.Fatalf("generated %d jobs", len(jobs))
	}
	for _, j := range jobs {
		if err := j.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRecurrentPSARecurrence(t *testing.T) {
	cfg := DefaultRecurrentPSAConfig(200)
	cfg.CampaignSize = 40
	jobs, err := cfg.Generate(rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	// Job i and job i+CampaignSize must carry identical specs.
	for i := 0; i+40 < len(jobs); i++ {
		a, b := jobs[i], jobs[i+40]
		if a.Workload != b.Workload || a.SecurityDemand != b.SecurityDemand {
			t.Fatalf("campaign recurrence broken at %d: %v/%v vs %v/%v",
				i, a.Workload, a.SecurityDemand, b.Workload, b.SecurityDemand)
		}
	}
	// Arrivals still strictly increase.
	for i := 1; i < len(jobs); i++ {
		if jobs[i].Arrival <= jobs[i-1].Arrival {
			t.Fatal("arrivals must increase")
		}
	}
}

func TestRecurrentPSADistinctSpecsWithinCampaign(t *testing.T) {
	cfg := DefaultRecurrentPSAConfig(40)
	jobs, err := cfg.Generate(rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	distinct := map[float64]bool{}
	for _, j := range jobs {
		distinct[j.Workload*1e6+j.SecurityDemand] = true
	}
	if len(distinct) < 15 {
		t.Fatalf("campaign has only %d distinct specs; want variety", len(distinct))
	}
}

func TestRecurrentPSAValidate(t *testing.T) {
	cfg := DefaultRecurrentPSAConfig(100)
	cfg.CampaignSize = 0
	if _, err := cfg.Generate(rng.New(1)); err == nil {
		t.Fatal("zero campaign size should fail")
	}
	cfg = DefaultRecurrentPSAConfig(0)
	if err := cfg.Validate(); err == nil {
		t.Fatal("zero jobs should fail")
	}
}

func TestRecurrentPSADeterministic(t *testing.T) {
	cfg := DefaultRecurrentPSAConfig(100)
	a, _ := cfg.Generate(rng.New(5))
	b, _ := cfg.Generate(rng.New(5))
	for i := range a {
		if a[i].Arrival != b[i].Arrival || a[i].Workload != b[i].Workload {
			t.Fatal("recurrent generation not deterministic")
		}
	}
}
