package trace

import (
	"fmt"
	"math"
	"sort"

	"trustgrid/internal/grid"
	"trustgrid/internal/rng"
)

// NASConfig generates a synthetic trace with the statistical character of
// the NASA Ames iPSC/860 accounting trace used by the paper (Feitelson &
// Nitzberg 1994): power-of-two node requests heavily weighted toward
// small jobs, heavy-tailed (log-normal) runtimes, and a diurnal/weekly
// arrival cycle. The paper squeezes the 92-day trace to 46 days; we
// generate the 46-day version directly.
//
// The real trace is not redistributable inside this repository, so the
// generator is the default substrate; ParseSWF + JobsFromSWF accept the
// genuine NASA-iPSC-1993-3.swf if available (DESIGN.md §4).
type NASConfig struct {
	Jobs int     // number of jobs (Table 1: 16000)
	Span float64 // arrival span in seconds (46 days)
	// LoadFactor is the ratio of total generated work to platform
	// capacity (TotalSpeed × Span). The NAS experiments run the grid
	// slightly beyond saturation; 1.15 reproduces the paper's regime of
	// multi-day queueing delays.
	LoadFactor float64
	// TotalSpeed is the platform aggregate speed used for calibration
	// (128 for the NAS platform).
	TotalSpeed float64
	// SizeWeights[k] is the probability weight of a 2^k-node request,
	// k = 0..len-1. Defaults follow the published trace characterization:
	// most jobs small, a thin tail of full-machine (128-node) jobs.
	SizeWeights []float64
	// RuntimeSigma is the log-normal shape of runtimes; RuntimeMedian is
	// the median in seconds before load calibration. MaxRuntime caps the
	// tail (the iPSC/860 had an 18-hour NQS limit).
	RuntimeSigma  float64
	RuntimeMedian float64
	MaxRuntime    float64
	// DiurnalAmplitude in [0,1) modulates the arrival rate with a daily
	// sine (peak at 2pm); WeekendFactor multiplies weekend rates.
	DiurnalAmplitude float64
	WeekendFactor    float64
	// SDMin, SDMax bound the uniform security demand (Table 1: 0.6–0.9).
	SDMin, SDMax float64
}

// DefaultNASConfig returns the Table 1 configuration.
func DefaultNASConfig() NASConfig {
	return NASConfig{
		Jobs:       16000,
		Span:       46 * 24 * 3600,
		LoadFactor: 1.15,
		TotalSpeed: 128,
		// Weights for sizes 1,2,4,...,128. The published characterization
		// reports a strong mode at small powers of two plus a visible
		// full-machine spike.
		SizeWeights:      []float64{0.12, 0.14, 0.20, 0.20, 0.14, 0.10, 0.06, 0.04},
		RuntimeSigma:     1.5,
		RuntimeMedian:    600,
		MaxRuntime:       18 * 3600,
		DiurnalAmplitude: 0.6,
		WeekendFactor:    0.5,
		SDMin:            0.6,
		SDMax:            0.9,
	}
}

// Validate checks the configuration.
func (c NASConfig) Validate() error {
	switch {
	case c.Jobs <= 0:
		return fmt.Errorf("trace: NAS Jobs must be positive, got %d", c.Jobs)
	case c.Span <= 0:
		return fmt.Errorf("trace: NAS Span must be positive, got %v", c.Span)
	case c.LoadFactor <= 0:
		return fmt.Errorf("trace: NAS LoadFactor must be positive, got %v", c.LoadFactor)
	case c.TotalSpeed <= 0:
		return fmt.Errorf("trace: NAS TotalSpeed must be positive, got %v", c.TotalSpeed)
	case len(c.SizeWeights) == 0:
		return fmt.Errorf("trace: NAS SizeWeights empty")
	case c.SDMin < 0 || c.SDMax > 1 || c.SDMin > c.SDMax:
		return fmt.Errorf("trace: NAS bad SD range [%v, %v]", c.SDMin, c.SDMax)
	case c.DiurnalAmplitude < 0 || c.DiurnalAmplitude >= 1:
		return fmt.Errorf("trace: NAS DiurnalAmplitude must be in [0,1), got %v", c.DiurnalAmplitude)
	case c.WeekendFactor <= 0:
		return fmt.Errorf("trace: NAS WeekendFactor must be positive, got %v", c.WeekendFactor)
	}
	return nil
}

// arrivalRate returns the relative arrival intensity at time t.
func (c NASConfig) arrivalRate(t float64) float64 {
	const day = 24 * 3600
	// Peak at 14:00: sin phase shifted so the max lands there.
	phase := 2 * math.Pi * (math.Mod(t, day)/day - 14.0/24.0)
	rate := 1 + c.DiurnalAmplitude*math.Cos(phase)
	weekday := int(t/day) % 7
	if weekday >= 5 {
		rate *= c.WeekendFactor
	}
	return rate
}

// Generate produces the synthetic job list, sorted by arrival time.
// Runtimes are rescaled so that total work = LoadFactor × TotalSpeed ×
// Span exactly, which pins the offered load independent of sampling noise.
func (c NASConfig) Generate(r *rng.Stream) ([]*grid.Job, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	arrivalsRng := r.Derive("nas/arrivals")
	sizeRng := r.Derive("nas/sizes")
	runtimeRng := r.Derive("nas/runtimes")
	sdRng := r.Derive("nas/sd")

	// Arrivals: non-homogeneous Poisson by thinning against the peak rate.
	peak := (1 + c.DiurnalAmplitude)
	arrivals := make([]float64, 0, c.Jobs)
	// Base rate chosen so that expected acceptances fill Jobs within Span;
	// we simply draw until we have enough and rescale into the span, which
	// preserves the modulation shape exactly.
	t := 0.0
	baseRate := float64(c.Jobs) / c.Span * 1.5 // oversample, then trim
	for len(arrivals) < c.Jobs {
		t += arrivalsRng.Exp(baseRate * peak)
		if t > c.Span {
			// Wrap: restart the clock; modulation is periodic so this
			// keeps the profile while guaranteeing termination.
			t = math.Mod(t, c.Span)
		}
		if arrivalsRng.Float64()*peak <= c.arrivalRate(t) {
			arrivals = append(arrivals, t)
		}
	}
	sort.Float64s(arrivals)

	mu := math.Log(c.RuntimeMedian)
	jobs := make([]*grid.Job, c.Jobs)
	var totalWork float64
	for i := range jobs {
		k := sizeRng.WeightedChoice(c.SizeWeights)
		nodes := 1 << uint(k)
		runtime := runtimeRng.TruncLogNormal(mu, c.RuntimeSigma, 1, c.MaxRuntime)
		jobs[i] = &grid.Job{
			ID:             i,
			Arrival:        arrivals[i],
			Workload:       runtime * float64(nodes),
			Nodes:          nodes,
			SecurityDemand: sdRng.Uniform(c.SDMin, c.SDMax),
		}
		totalWork += jobs[i].Workload
	}

	// Calibrate: scale workloads so offered load hits LoadFactor exactly.
	target := c.LoadFactor * c.TotalSpeed * c.Span
	scale := target / totalWork
	for _, j := range jobs {
		j.Workload *= scale
	}
	return jobs, nil
}

// ToSWF converts generated jobs back into SWF records (runtime recovered
// as workload/nodes) for interoperability with archive tooling.
func ToSWF(jobs []*grid.Job) []SWFRecord {
	recs := make([]SWFRecord, len(jobs))
	for i, j := range jobs {
		recs[i] = SWFRecord{
			JobID:      j.ID,
			Submit:     j.Arrival,
			Wait:       -1,
			Runtime:    j.Workload / float64(j.Nodes),
			Processors: j.Nodes,
		}
	}
	return recs
}
