package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"trustgrid/internal/rng"
)

func TestParseNAS(t *testing.T) {
	in := strings.Join([]string{
		"; NAS accounting export",
		"",
		"0 8 120.5",
		"30 128 3600 annotated-extra-field",
		"60 -1 100", // unknown nodes: skipped
		"90 16 -1",  // unknown runtime: skipped
		"120 4 0",
	}, "\n")
	recs, err := ParseNAS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("parsed %d records, want 3", len(recs))
	}
	if recs[1].Nodes != 128 || recs[1].Runtime != 3600 {
		t.Fatalf("record 1 = %+v", recs[1])
	}
	jobs := JobsFromNAS(recs, func(int) float64 { return 0.7 })
	for _, j := range jobs {
		if err := j.Validate(); err != nil {
			t.Fatalf("JobsFromNAS produced invalid job: %v", err)
		}
	}
	// Zero-runtime record clamps to 1s of work per node.
	if jobs[2].Workload != 4 {
		t.Fatalf("zero-runtime workload = %v, want 4", jobs[2].Workload)
	}
}

func TestParseNASErrors(t *testing.T) {
	cases := []string{
		"1 2",           // too few fields
		"x 8 120",       // bad submit
		"10 8.5 120",    // fractional nodes
		"10 8 wat",      // bad runtime
		"-5 8 120",      // negative submit
		"NaN 8 120",     // NaN submit
		"10 8 +Inf",     // infinite runtime
		"10 1e300 120",  // node count overflow
		"10 8 1e400000", // malformed float
	}
	for _, in := range cases {
		if _, err := ParseNAS(strings.NewReader(in)); err == nil {
			t.Errorf("ParseNAS accepted %q", in)
		}
	}
}

func TestParsePSARoundTrip(t *testing.T) {
	jobs, err := DefaultPSAConfig(50).Generate(rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WritePSA(&buf, jobs); err != nil {
		t.Fatal(err)
	}
	back, err := ParsePSA(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(jobs) {
		t.Fatalf("round trip lost jobs: %d vs %d", len(back), len(jobs))
	}
	for i := range jobs {
		if !reflect.DeepEqual(back[i], jobs[i]) {
			t.Fatalf("job %d differs after round trip: %+v vs %+v", i, back[i], jobs[i])
		}
	}
}

func TestParsePSAAcceptsCommentsAndHeader(t *testing.T) {
	in := "# campaign A\nid,arrival,workload,nodes,sd\n3, 10.5, 15000, 1, 0.75\n"
	jobs, err := ParsePSA(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].ID != 3 || jobs[0].SecurityDemand != 0.75 {
		t.Fatalf("jobs = %+v", jobs)
	}
}

func TestParsePSAErrors(t *testing.T) {
	cases := []string{
		"1,2,3",                           // too few columns
		"x,1,100,1,0.7",                   // bad id
		"1,abc,100,1,0.7",                 // bad arrival
		"1,-5,100,1,0.7",                  // negative arrival
		"1,10,0,1,0.7",                    // zero workload
		"1,10,100,0,0.7",                  // zero nodes
		"1,10,100,1.5,0.7",                // fractional nodes
		"1,10,100,1,1.5",                  // SD out of range
		"1,NaN,100,1,0.7",                 // NaN
		"1,10,+Inf,1,0.7",                 // Inf
		"1,10,100,9e99,0.7",               // node overflow
		"1,10,100,-1e30,0.7",              // negative node overflow
		"1,10,100,1,0.7,extra",            // too many columns
		"9223372036854775808,1,100,1,0.7", // id overflow
	}
	for _, in := range cases {
		if _, err := ParsePSA(strings.NewReader(in)); err == nil {
			t.Errorf("ParsePSA accepted %q", in)
		}
	}
}

func TestParseSWFRejectsCorruptFields(t *testing.T) {
	cases := []string{
		"NaN 1 1 10 4",
		"1 Inf 1 10 4",
		"1 -5 1 10 4",    // negative submit
		"1.5 1 1 10 4",   // fractional job id
		"1 1 1 10 1e300", // processor overflow
		"9e99 1 1 10 4",  // job id overflow
	}
	for _, in := range cases {
		if _, err := ParseSWF(strings.NewReader(in)); err == nil {
			t.Errorf("ParseSWF accepted %q", in)
		}
	}
}
