package trace

import (
	"fmt"

	"trustgrid/internal/grid"
	"trustgrid/internal/rng"
)

// RecurrentPSAConfig generates a parameter-sweep workload with explicit
// temporal locality: a fixed "campaign" of job specifications (workload
// level and security demand per position) is resubmitted over and over,
// as when a researcher re-runs the same sweep on new data. This realizes
// the recurrence the paper's §3 argues makes the STGA's history table
// effective ("the jobs submitted previously would appear again in the
// near future"); the plain PSAConfig draws every job independently and
// therefore carries no recurrence beyond distribution shape.
type RecurrentPSAConfig struct {
	Jobs         int     // total jobs to emit
	CampaignSize int     // distinct job specs per campaign
	ArrivalRate  float64 // Poisson arrival rate, jobs/s
	Levels       int     // workload levels (Table 1: 20)
	MaxWorkload  float64 // top level workload (Table 1: 300000)
	SDMin, SDMax float64 // security demand range (Table 1: 0.6–0.9)
}

// DefaultRecurrentPSAConfig mirrors Table 1 with a campaign the size of
// a typical scheduling batch.
func DefaultRecurrentPSAConfig(n int) RecurrentPSAConfig {
	return RecurrentPSAConfig{
		Jobs:         n,
		CampaignSize: 40,
		ArrivalRate:  0.008,
		Levels:       20,
		MaxWorkload:  300000,
		SDMin:        0.6,
		SDMax:        0.9,
	}
}

// Validate checks the configuration.
func (c RecurrentPSAConfig) Validate() error {
	if c.CampaignSize <= 0 {
		return fmt.Errorf("trace: recurrent PSA campaign size %d <= 0", c.CampaignSize)
	}
	base := PSAConfig{Jobs: c.Jobs, ArrivalRate: c.ArrivalRate, Levels: c.Levels,
		MaxWorkload: c.MaxWorkload, SDMin: c.SDMin, SDMax: c.SDMax}
	return base.Validate()
}

// Generate emits the recurrent workload: job i carries the spec of
// campaign position i mod CampaignSize, with Poisson arrivals.
func (c RecurrentPSAConfig) Generate(r *rng.Stream) ([]*grid.Job, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	specRng := r.Derive("recpsa/spec")
	arrivalsRng := r.Derive("recpsa/arrivals")

	unit := c.MaxWorkload / float64(c.Levels)
	work := make([]float64, c.CampaignSize)
	sd := make([]float64, c.CampaignSize)
	for i := range work {
		work[i] = float64(specRng.Level(c.Levels)) * unit
		sd[i] = specRng.Uniform(c.SDMin, c.SDMax)
	}

	jobs := make([]*grid.Job, c.Jobs)
	t := 0.0
	for i := range jobs {
		t += arrivalsRng.Exp(c.ArrivalRate)
		pos := i % c.CampaignSize
		jobs[i] = &grid.Job{
			ID:             i,
			Arrival:        t,
			Workload:       work[pos],
			Nodes:          1,
			SecurityDemand: sd[pos],
		}
	}
	return jobs, nil
}
