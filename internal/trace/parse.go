package trace

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"trustgrid/internal/grid"
)

// This file holds the textual trace parsers beyond SWF (swf.go):
// ParseNAS reads the compact three-column accounting export of the
// NASA Ames iPSC/860 characterization, and ParsePSA round-trips the
// repository's own PSA campaign format. All parsers share the contract
// the fuzz targets enforce: malformed input returns an error — never a
// panic — and accepted records are always simulable.

// NASRecord is one job of a compact NAS accounting export: the
// (submit, nodes, runtime) triple that the Feitelson & Nitzberg
// characterization is built on. The genuine archive trace is
// distributed in SWF (use ParseSWF); this format is what remains after
// stripping the archive metadata down to the fields the simulator
// consumes.
type NASRecord struct {
	Submit  float64 // seconds since trace start
	Nodes   int
	Runtime float64 // seconds
}

// ParseNAS reads a compact NAS accounting stream: ';' comment lines,
// then whitespace-separated records `submit nodes runtime` (at least 3
// fields; extras are ignored so annotated exports still load). Records
// with unknown (-1) runtime or node count are skipped, as in SWF
// replays; any other malformed field is an error.
func ParseNAS(r io.Reader) ([]NASRecord, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	var out []NASRecord
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, ";") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			return nil, fmt.Errorf("trace: NAS line %d has %d fields, need >= 3", lineNo, len(fields))
		}
		submit, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: NAS line %d submit: %v", lineNo, err)
		}
		nodes, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: NAS line %d nodes: %v", lineNo, err)
		}
		runtime, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: NAS line %d runtime: %v", lineNo, err)
		}
		if math.IsNaN(submit) || math.IsInf(submit, 0) || submit < 0 {
			return nil, fmt.Errorf("trace: NAS line %d has bad submit %v", lineNo, submit)
		}
		if math.IsNaN(nodes) || nodes != math.Trunc(nodes) || nodes > float64(1<<30) {
			return nil, fmt.Errorf("trace: NAS line %d has non-integral node count %q", lineNo, fields[1])
		}
		if math.IsNaN(runtime) || math.IsInf(runtime, 0) {
			return nil, fmt.Errorf("trace: NAS line %d has bad runtime %q", lineNo, fields[2])
		}
		if runtime < 0 || nodes <= 0 {
			continue // unknown (-1) runtime / nodes: cannot simulate
		}
		out = append(out, NASRecord{Submit: submit, Nodes: int(nodes), Runtime: runtime})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: reading NAS: %w", err)
	}
	return out, nil
}

// JobsFromNAS converts accounting records into simulator jobs under the
// aggregate-speed model (workload = runtime × nodes); security demands
// are drawn from sd, as in JobsFromSWF.
func JobsFromNAS(recs []NASRecord, sd func(i int) float64) []*grid.Job {
	jobs := make([]*grid.Job, 0, len(recs))
	for i, r := range recs {
		runtime := r.Runtime
		if runtime <= 0 {
			runtime = 1 // zero-runtime accounting records: clamp to 1s
		}
		jobs = append(jobs, &grid.Job{
			ID:             i,
			Arrival:        r.Submit,
			Workload:       runtime * float64(r.Nodes),
			Nodes:          r.Nodes,
			SecurityDemand: sd(i),
		})
	}
	return jobs
}

// psaHeader is the column line WritePSA emits and ParsePSA accepts.
const psaHeader = "id,arrival,workload,nodes,sd"

// ParsePSA reads a PSA campaign file: '#' comment lines, an optional
// header line, then CSV records `id,arrival,workload,nodes,sd`. Every
// accepted job satisfies grid.Job.Validate; anything else is an error
// with a line number.
func ParsePSA(r io.Reader) ([]*grid.Job, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	var out []*grid.Job
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || line == psaHeader {
			continue
		}
		fields := strings.Split(line, ",")
		if len(fields) != 5 {
			return nil, fmt.Errorf("trace: PSA line %d has %d columns, need 5 (%s)", lineNo, len(fields), psaHeader)
		}
		id, err := strconv.Atoi(strings.TrimSpace(fields[0]))
		if err != nil {
			return nil, fmt.Errorf("trace: PSA line %d id: %v", lineNo, err)
		}
		var vals [4]float64
		for i := 1; i < 5; i++ {
			v, err := strconv.ParseFloat(strings.TrimSpace(fields[i]), 64)
			if err != nil {
				return nil, fmt.Errorf("trace: PSA line %d column %d: %v", lineNo, i+1, err)
			}
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("trace: PSA line %d column %d is %v", lineNo, i+1, v)
			}
			vals[i-1] = v
		}
		nodes := vals[2]
		if nodes != math.Trunc(nodes) || math.Abs(nodes) > float64(1<<30) {
			return nil, fmt.Errorf("trace: PSA line %d has non-integral node count %q", lineNo, fields[3])
		}
		j := &grid.Job{
			ID:             id,
			Arrival:        vals[0],
			Workload:       vals[1],
			Nodes:          int(nodes),
			SecurityDemand: vals[3],
		}
		if err := j.Validate(); err != nil {
			return nil, fmt.Errorf("trace: PSA line %d: %w", lineNo, err)
		}
		out = append(out, j)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: reading PSA: %w", err)
	}
	return out, nil
}

// WritePSA writes jobs in the PSA campaign format ParsePSA reads.
func WritePSA(w io.Writer, jobs []*grid.Job) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, psaHeader); err != nil {
		return err
	}
	for _, j := range jobs {
		if _, err := fmt.Fprintf(bw, "%d,%g,%g,%d,%g\n",
			j.ID, j.Arrival, j.Workload, j.Nodes, j.SecurityDemand); err != nil {
			return err
		}
	}
	return bw.Flush()
}
