module trustgrid

go 1.24
